// Delta-driven cache invalidation: the whole-query memo is keyed on the
// per-relation versions of exactly the relations a query reads, so an
// Insert into S must leave cached answers that read only R hot (asserted
// via the query_cache_hits metric), an Insert into R must invalidate
// them, and drop-then-redefine can never serve a stale answer. The
// materialized Datalog fixpoint obeys the same discipline through its
// hit / resume / recompute metrics.

#include <gtest/gtest.h>

#include <string>

#include "base/memo.h"
#include "base/metrics.h"
#include "datalog/datalog.h"
#include "engine/database.h"

namespace ccdb {
namespace {

Rational R(std::int64_t n, std::int64_t d = 1) {
  return Rational(BigInt(n), BigInt(d));
}

class CacheScopingTest : public testing::Test {
 protected:
  void SetUp() override {
    saved_memo_ = MemoCachesEnabled();
    saved_incremental_ = IncrementalEnabled();
    SetMemoCachesEnabled(true);
    SetIncrementalEnabled(true);
    hits_ = MetricsRegistry::Global().GetCounter("query_cache_hits");
  }
  void TearDown() override {
    SetMemoCachesEnabled(saved_memo_);
    SetIncrementalEnabled(saved_incremental_);
  }

  // Runs the query and reports whether it was answered by the whole-query
  // memo, via the hit counter delta (single-threaded test, so exact).
  bool QueryHitsCache(const ConstraintDatabase& db, const std::string& text) {
    std::uint64_t before = hits_->value();
    auto result = db.Query(text);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return hits_->value() > before;
  }

  Counter* hits_ = nullptr;
  bool saved_memo_ = false;
  bool saved_incremental_ = false;
};

TEST_F(CacheScopingTest, InsertIntoUnreadRelationKeepsEntriesHot) {
  ConstraintDatabase db;
  ASSERT_TRUE(db.Define("ScopeR(x) := x >= 0 and x <= 4").ok());
  ASSERT_TRUE(db.Define("ScopeS(x) := x >= 10 and x <= 14").ok());
  const std::string reads_r = "ScopeR(x) and x >= 1";

  EXPECT_FALSE(QueryHitsCache(db, reads_r)) << "first run must evaluate";
  EXPECT_TRUE(QueryHitsCache(db, reads_r)) << "second run must hit";

  // Insert into S: OUTSIDE the query's read-set, so the entry stays hot.
  ASSERT_TRUE(db.Insert("ScopeS(x) := x >= 20 and x <= 24").ok());
  EXPECT_TRUE(QueryHitsCache(db, reads_r))
      << "an insert into an unread relation must not invalidate";

  // Insert into R: inside the read-set — the entry must be invalidated.
  ASSERT_TRUE(db.Insert("ScopeR(x) := x >= 6 and x <= 7").ok());
  EXPECT_FALSE(QueryHitsCache(db, reads_r))
      << "an insert into a read relation must invalidate";
  // And the re-evaluated answer sees the new tuples.
  auto result = db.Query(reads_r);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->relation.Contains({R(13, 2)}));
  EXPECT_TRUE(QueryHitsCache(db, reads_r)) << "rewarmed";
}

TEST_F(CacheScopingTest, DropThenRedefineNeverServesStale) {
  ConstraintDatabase db;
  ASSERT_TRUE(db.Define("ScopeT(x) := x >= 0 and x <= 1").ok());
  const std::string text = "ScopeT(x) and x >= 0";
  auto first = db.Query(text);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->relation.Contains({R(5)}));
  EXPECT_TRUE(QueryHitsCache(db, text));

  ASSERT_TRUE(db.Drop("ScopeT").ok());
  ASSERT_TRUE(db.Define("ScopeT(x) := x >= 4 and x <= 6").ok());
  // The redefined relation carries a fresh version: the old entry cannot
  // be served.
  auto second = db.Query(text);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->relation.Contains({R(5)}));
  EXPECT_FALSE(second->relation.Contains({R(1, 2)}));
}

TEST_F(CacheScopingTest, ReadSetReportsRelationsAndVersions) {
  ConstraintDatabase db;
  ASSERT_TRUE(db.Define("DepA(x) := x >= 0").ok());
  auto read_set = db.ReadSet("DepA(x) and DepMissing(x)");
  ASSERT_TRUE(read_set.ok());
  ASSERT_EQ(read_set->size(), 2u);
  EXPECT_EQ((*read_set)[0].first, "DepA");
  EXPECT_GT((*read_set)[0].second, 0u);
  EXPECT_EQ((*read_set)[1].first, "DepMissing");
  EXPECT_EQ((*read_set)[1].second, 0u) << "absent relations version as 0";

  // An insert bumps the read-set version; defining the missing relation
  // turns its 0 into a live stamp.
  std::uint64_t before = (*read_set)[0].second;
  ASSERT_TRUE(db.Insert("DepA(x) := x >= 100 and x <= 101").ok());
  ASSERT_TRUE(db.Define("DepMissing(x) := x <= 0").ok());
  auto after = db.ReadSet("DepA(x) and DepMissing(x)");
  ASSERT_TRUE(after.ok());
  EXPECT_GT((*after)[0].second, before);
  EXPECT_GT((*after)[1].second, 0u);

  EXPECT_FALSE(db.ReadSet("exists y (").ok()) << "parse errors surface";
}

TEST_F(CacheScopingTest, FixpointHitResumeRecomputeMetrics) {
  ConstraintDatabase db;
  ASSERT_TRUE(
      db.Define("FixEdge(x, y) := y - x - 1 = 0 and x >= 0 and x <= 2").ok());

  DatalogProgram program;
  program.idb_arities["Reach"] = 2;
  {
    DatalogRule rule;
    rule.head = "Reach";
    rule.head_vars = {0, 1};
    rule.body.push_back(DatalogLiteral::Rel("FixEdge", {0, 1}));
    program.rules.push_back(rule);
  }
  {
    DatalogRule rule;
    rule.head = "Reach";
    rule.head_vars = {0, 1};
    rule.body.push_back(DatalogLiteral::Rel("Reach", {0, 2}));
    rule.body.push_back(DatalogLiteral::Rel("FixEdge", {2, 1}));
    program.rules.push_back(rule);
  }

  Counter* fp_hits =
      MetricsRegistry::Global().GetCounter("datalog_fixpoint_hits");
  Counter* fp_resumes =
      MetricsRegistry::Global().GetCounter("datalog_fixpoint_resumes");
  Counter* fp_recomputes =
      MetricsRegistry::Global().GetCounter("datalog_fixpoint_recomputes");

  // Cold: one recompute, which materializes the state.
  std::uint64_t recomputes = fp_recomputes->value();
  ASSERT_TRUE(db.Fixpoint(program).ok());
  EXPECT_EQ(fp_recomputes->value(), recomputes + 1);

  // Unchanged EDB: replay, no evaluation.
  std::uint64_t hits = fp_hits->value();
  DatalogStats replay_stats;
  auto replayed = db.Fixpoint(program, {}, &replay_stats);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(fp_hits->value(), hits + 1);
  EXPECT_TRUE(replay_stats.reached_fixpoint);
  EXPECT_EQ(replay_stats.qe_calls, 0u) << "a replay must not run QE";

  // Append-only growth: resume.
  ASSERT_TRUE(
      db.Insert("FixEdge(x, y) := y - x - 1 = 0 and x >= 3 and x <= 4").ok());
  std::uint64_t resumes = fp_resumes->value();
  auto resumed = db.Fixpoint(program);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(fp_resumes->value(), resumes + 1);
  EXPECT_TRUE(resumed->at("Reach").Contains({R(0), R(5)}))
      << "the resumed fixpoint must see closure through the new segment";

  // Structural change (drop + redefine): back to a recompute.
  ASSERT_TRUE(db.Drop("FixEdge").ok());
  ASSERT_TRUE(
      db.Define("FixEdge(x, y) := y - x - 1 = 0 and x >= 0 and x <= 1").ok());
  recomputes = fp_recomputes->value();
  auto recomputed = db.Fixpoint(program);
  ASSERT_TRUE(recomputed.ok());
  EXPECT_EQ(fp_recomputes->value(), recomputes + 1);
  EXPECT_FALSE(recomputed->at("Reach").Contains({R(0), R(5)}))
      << "the recomputed fixpoint must not leak the dropped tuples";

  // CCDB_INCREMENTAL=0: always a cold evaluation, no metric movement.
  SetIncrementalEnabled(false);
  std::uint64_t frozen_hits = fp_hits->value();
  std::uint64_t frozen_resumes = fp_resumes->value();
  ASSERT_TRUE(db.Fixpoint(program).ok());
  EXPECT_EQ(fp_hits->value(), frozen_hits);
  EXPECT_EQ(fp_resumes->value(), frozen_resumes);
}

}  // namespace
}  // namespace ccdb
