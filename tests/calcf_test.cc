#include "query/calcf.h"

#include <cmath>

#include <map>
#include <memory>

#include <gtest/gtest.h>

#include "base/logging.h"
#include "query/parser.h"

namespace ccdb {
namespace {

Rational R(std::int64_t n, std::int64_t d = 1) {
  return Rational(BigInt(n), BigInt(d));
}

// Database with the paper's relation S and a couple of others.
CalcFEvaluator::RelationLookup PaperDatabase() {
  auto s = ParseRelationDef("S(x, y) := 4*x^2 - y - 20*x + 25 <= 0");
  auto segment = ParseRelationDef("Seg(t) := 0 <= t and t <= 10");
  auto disk = ParseRelationDef("Disk(x, y) := x^2 + y^2 <= 1");
  CCDB_CHECK(s.ok() && segment.ok() && disk.ok());
  auto relations = std::make_shared<std::map<std::string, ConstraintRelation>>();
  relations->emplace("S", s->relation);
  relations->emplace("Seg", segment->relation);
  relations->emplace("Disk", disk->relation);
  return [relations](const std::string& name) -> StatusOr<ConstraintRelation> {
    auto it = relations->find(name);
    if (it == relations->end()) return Status::NotFound("no relation " + name);
    return it->second;
  };
}

TEST(CalcFTest, PaperFigure1QueryEndToEnd) {
  // Q(x) = exists y (S(x,y) and y <= 0): answer {2.5}.
  CalcFEvaluator evaluator(PaperDatabase());
  auto result = evaluator.EvaluateText("exists y (S(x, y) and y <= 0)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->column_names, std::vector<std::string>{"x"});
  EXPECT_TRUE(result->relation.Contains({R(5, 2)}));
  EXPECT_FALSE(result->relation.Contains({R(2)}));
  EXPECT_FALSE(result->relation.Contains({R(3)}));
  EXPECT_EQ(result->stats.qe_rounds, 1u);
}

TEST(CalcFTest, PaperExample51SurfaceIs18) {
  // Example 5.1/5.4: SURFACE[x,y](S(x,y) and y <= 9)(z) = {18}.
  CalcFEvaluator evaluator(PaperDatabase());
  auto result =
      evaluator.EvaluateText("SURFACE[x, y](S(x, y) and y <= 9)(z)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->has_scalar);
  EXPECT_TRUE(result->scalar.exact);
  EXPECT_EQ(result->scalar.exact_value, R(18));
  // Closed form: the result is itself a constraint relation {z = 18}.
  EXPECT_TRUE(result->relation.Contains({R(18)}));
  EXPECT_FALSE(result->relation.Contains({R(17)}));
  EXPECT_EQ(result->stats.aggregate_calls, 1u);
}

TEST(CalcFTest, MinMaxAvgOverSegment) {
  CalcFEvaluator evaluator(PaperDatabase());
  auto min = evaluator.EvaluateText("MIN[t](Seg(t))(m)");
  ASSERT_TRUE(min.ok()) << min.status().ToString();
  EXPECT_EQ(min->scalar.exact_value, R(0));
  auto max = evaluator.EvaluateText("MAX[t](Seg(t))(m)");
  ASSERT_TRUE(max.ok());
  EXPECT_EQ(max->scalar.exact_value, R(10));
  auto avg = evaluator.EvaluateText("AVG[t](Seg(t))(m)");
  ASSERT_TRUE(avg.ok());
  EXPECT_EQ(avg->scalar.exact_value, R(5));
  auto length = evaluator.EvaluateText("LENGTH[t](Seg(t))(m)");
  ASSERT_TRUE(length.ok());
  EXPECT_EQ(length->scalar.exact_value, R(10));
}

TEST(CalcFTest, AggregateOverDerivedSet) {
  // MAX over the x-projection of S restricted to y = 9: x in [1,4].
  CalcFEvaluator evaluator(PaperDatabase());
  auto result =
      evaluator.EvaluateText("MAX[x](exists y (S(x, y) and y = 9))(m)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->scalar.exact_value, R(4));
}

TEST(CalcFTest, NestedAggregates) {
  // LENGTH of the interval [0, MAX(Seg)] = 10: the outer aggregate consumes
  // the inner one's output.
  CalcFEvaluator evaluator(PaperDatabase());
  auto result = evaluator.EvaluateText(
      "LENGTH[t](exists m (MAX[s](Seg(s))(m) and 0 <= t and t <= m))(len)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->scalar.exact_value, R(10));
  EXPECT_EQ(result->stats.aggregate_calls, 2u);
}

TEST(CalcFTest, SurfaceOfDiskApproximate) {
  CalcFOptions options;
  options.tolerance = 1e-4;
  CalcFEvaluator evaluator(PaperDatabase(), options);
  auto result = evaluator.EvaluateText("SURFACE[x, y](Disk(x, y))(a)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->has_scalar);
  EXPECT_NEAR(result->scalar.approx_value, M_PI, 5e-3);
}

TEST(CalcFTest, AnalyticFunctionInQuery) {
  // exists x (Seg(x) and y = exp(x) and x = 1): y ≈ e.
  CalcFOptions options;
  options.approx_order = 10;
  options.abase = ABase::Uniform(R(0), R(4), 8);
  CalcFEvaluator evaluator(PaperDatabase(), options);
  auto result = evaluator.EvaluateText(
      "exists x (Seg(x) and y = exp(x) and x = 1)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->stats.approximation_calls, 0u);
  // The answer set is a singleton near e = 2.71828...
  bool found = false;
  for (std::int64_t milli = 2715; milli <= 2722; ++milli) {
    if (result->relation.Contains({R(milli, 1000)})) found = true;
  }
  // The set is tiny; instead check non-membership far away and membership
  // via the solution of the defining equation.
  EXPECT_FALSE(result->relation.Contains({R(1)}));
  EXPECT_FALSE(result->relation.Contains({R(4)}));
  (void)found;
  // x = 1 is an a-base breakpoint, so one tuple per adjacent piece may
  // appear; every tuple must pin y to a value within the approximation
  // error of e.
  ASSERT_GE(result->relation.tuples().size(), 1u);
  for (const GeneralizedTuple& tuple : result->relation.tuples()) {
    ASSERT_EQ(tuple.atoms.size(), 1u);
    auto coeffs = tuple.atoms[0].poly.CoefficientsIn(0);
    ASSERT_EQ(coeffs.size(), 2u);
    double value = (-coeffs[0].constant_value() /
                    coeffs[1].constant_value()).ToDouble();
    EXPECT_NEAR(value, std::exp(1.0), 1e-6);
  }
}

TEST(CalcFTest, FunctionCompositionSinOfPoly) {
  // y = sin(0) must give y = 0 (sin(0) is exactly 0 under Chebyshev
  // interpolation only approximately; accept small error).
  CalcFOptions options;
  options.approx_order = 12;
  options.abase = ABase::Uniform(R(-4), R(4), 8);
  CalcFEvaluator evaluator(PaperDatabase(), options);
  auto result = evaluator.EvaluateText("exists x (x = 0 and y = sin(x))");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Answer: y = h(0) with |h(0) - 0| small. The atom is canonicalized to
  // primitive integer form a*y - b = 0, so read the root b/a, not the raw
  // constant coefficient.
  ASSERT_GE(result->relation.tuples().size(), 1u);
  const Atom& atom = result->relation.tuples()[0].atoms[0];
  auto coeffs = atom.poly.CoefficientsIn(0);
  ASSERT_EQ(coeffs.size(), 2u);
  double value = (-coeffs[0].constant_value() /
                  coeffs[1].constant_value()).ToDouble();
  EXPECT_NEAR(value, 0.0, 1e-6);
}

TEST(CalcFTest, ArgumentOutsideABaseRejectedOrEmpty) {
  CalcFOptions options;
  options.abase = ABase::Uniform(R(0), R(1), 2);
  CalcFEvaluator evaluator(PaperDatabase(), options);
  // exp(5) is outside the a-base [0,1]: the constraint set is empty.
  auto result = evaluator.EvaluateText("exists x (x = 5 and y = exp(x))");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->relation.is_empty_syntactically());
}

TEST(CalcFTest, ParameterizedAggregateNonSeparableUndefined) {
  // The paper's step 4 requires each tuple to split into x-only and y-only
  // constraints ("the query is undefined otherwise"); S mixes x and y in
  // one atom.
  CalcFEvaluator evaluator(PaperDatabase());
  auto result =
      evaluator.EvaluateText("LENGTH[y](S(x, y) and y <= 9)(len)");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUndefined);
}

TEST(CalcFTest, ParameterizedAggregateSeparable) {
  // Piece(x, y): height-2 slab over x in [0,1], height-5 slab over
  // x in [1,3]. MAX[y](Piece(x,y))(m) is a function of the parameter x.
  auto piece = ParseRelationDef(
      "Piece(x, y) := (0 <= x and x <= 1 and 0 <= y and y <= 2) or "
      "(1 <= x and x <= 3 and 0 <= y and y <= 5)");
  ASSERT_TRUE(piece.ok());
  ConstraintRelation rel = piece->relation;
  auto lookup = [&rel](const std::string& name)
      -> StatusOr<ConstraintRelation> {
    if (name == "Piece") return rel;
    return Status::NotFound("no relation " + name);
  };
  CalcFEvaluator evaluator(lookup);
  auto result = evaluator.EvaluateText("MAX[y](Piece(x, y))(m)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Columns: x then m.
  EXPECT_TRUE(result->relation.Contains({R(1, 2), R(2)}));
  EXPECT_FALSE(result->relation.Contains({R(1, 2), R(5)}));
  EXPECT_TRUE(result->relation.Contains({R(2), R(5)}));
  EXPECT_FALSE(result->relation.Contains({R(2), R(2)}));
  // At the seam x = 1 both slabs are active: max of the union is 5.
  EXPECT_TRUE(result->relation.Contains({R(1), R(5)}));
  // Outside the pieces the aggregate is undefined: no tuple matches.
  EXPECT_FALSE(result->relation.Contains({R(4), R(5)}));
  EXPECT_FALSE(result->relation.Contains({R(4), R(2)}));
}

TEST(CalcFTest, ParameterizedLengthOfSlabs) {
  auto piece = ParseRelationDef(
      "Slab(x, y) := (0 <= x and x <= 2 and 0 <= y and y <= 3) or "
      "(0 <= x and x <= 1 and 4 <= y and y <= 6)");
  ASSERT_TRUE(piece.ok());
  ConstraintRelation rel = piece->relation;
  auto lookup = [&rel](const std::string& name)
      -> StatusOr<ConstraintRelation> {
    if (name == "Slab") return rel;
    return Status::NotFound("no relation " + name);
  };
  CalcFEvaluator evaluator(lookup);
  auto result = evaluator.EvaluateText("LENGTH[y](Slab(x, y))(len)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // x in (0,1): both slabs: length 3 + 2 = 5. x in (1,2): length 3.
  EXPECT_TRUE(result->relation.Contains({R(1, 2), R(5)}));
  EXPECT_TRUE(result->relation.Contains({R(3, 2), R(3)}));
  EXPECT_FALSE(result->relation.Contains({R(3, 2), R(5)}));
}

TEST(CalcFTest, EvalAggregate) {
  // EVAL[x](4x^2-20x+25 = 0)(r): finite solution {2.5}.
  CalcFEvaluator evaluator(PaperDatabase());
  auto result = evaluator.EvaluateText(
      "EVAL[x](4*x^2 - 20*x + 25 = 0)(r)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->relation.Contains({R(5, 2)}));
  EXPECT_FALSE(result->relation.Contains({R(2)}));
}

TEST(CalcFTest, UnknownRelation) {
  CalcFEvaluator evaluator(PaperDatabase());
  auto result = evaluator.EvaluateText("Nope(x)");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(CalcFTest, ClosedFormComposability) {
  // Theorem 5.5's closed-form property: the output of a CALC_F query is a
  // constraint relation usable as input again.
  CalcFEvaluator evaluator(PaperDatabase());
  auto first = evaluator.EvaluateText("exists y (S(x, y) and y <= 0)");
  ASSERT_TRUE(first.ok());
  // Register the output and query it.
  ConstraintRelation derived = first->relation;
  auto lookup =
      [&derived](const std::string& name) -> StatusOr<ConstraintRelation> {
    if (name == "D") return derived;
    return Status::NotFound("no relation " + name);
  };
  CalcFEvaluator second(lookup);
  auto final_result = second.EvaluateText("EVAL[x](D(x))(r)");
  ASSERT_TRUE(final_result.ok()) << final_result.status().ToString();
  EXPECT_TRUE(final_result->relation.Contains({R(5, 2)}));
}

}  // namespace
}  // namespace ccdb
