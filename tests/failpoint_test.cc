#include "base/failpoint.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "base/status.h"
#include "datalog/datalog.h"
#include "engine/database.h"

namespace ccdb {
namespace {

class FailpointRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Global().ClearAll(); }
  void TearDown() override { FailpointRegistry::Global().ClearAll(); }
};

TEST_F(FailpointRegistryTest, ConfigureParsesMultipleEntries) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  ASSERT_TRUE(reg.Configure("cad.lift=error@3,qe.drive=exhaust").ok());
  std::vector<std::string> armed = reg.ArmedSites();
  ASSERT_EQ(armed.size(), 2u);
  EXPECT_NE(std::find(armed.begin(), armed.end(), "cad.lift"), armed.end());
  EXPECT_NE(std::find(armed.begin(), armed.end(), "qe.drive"), armed.end());
}

TEST_F(FailpointRegistryTest, ConfigureRejectsMalformedSpecs) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  EXPECT_EQ(reg.Configure("cad.lift").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(reg.Configure("site=bogus").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(reg.Configure("site=error@zero").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(reg.Configure("=error").code(), StatusCode::kInvalidArgument);
  // Nothing armed from any bad spec.
  EXPECT_TRUE(reg.ArmedSites().empty());
}

TEST_F(FailpointRegistryTest, KindsMapToStatusCodes) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  ASSERT_TRUE(reg.Configure("a=error,b=exhaust,c=undefined,d=numfail").ok());
  EXPECT_EQ(reg.Hit("a").code(), StatusCode::kInternal);
  EXPECT_EQ(reg.Hit("b").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(reg.Hit("c").code(), StatusCode::kUndefined);
  EXPECT_EQ(reg.Hit("d").code(), StatusCode::kNumericalFailure);
}

TEST_F(FailpointRegistryTest, FiresOnNthHitExactlyOnce) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  reg.Set("site", FailpointSpec{FailpointSpec::Kind::kError, 3});
  EXPECT_TRUE(reg.Hit("site").ok());
  EXPECT_TRUE(reg.Hit("site").ok());
  EXPECT_EQ(reg.Hit("site").code(), StatusCode::kInternal);  // 3rd hit fires
  EXPECT_TRUE(reg.Hit("site").ok());  // one-shot: disarmed after firing
  EXPECT_EQ(reg.HitCount("site"), 4u);
}

TEST_F(FailpointRegistryTest, HitCountsUnarmedSites) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  EXPECT_TRUE(reg.Hit("never.armed").ok());
  EXPECT_TRUE(reg.Hit("never.armed").ok());
  EXPECT_EQ(reg.HitCount("never.armed"), 2u);
  EXPECT_EQ(reg.HitCount("never.passed"), 0u);
}

TEST_F(FailpointRegistryTest, ClearDisarmsButKeepsCount) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  reg.Set("site", FailpointSpec{FailpointSpec::Kind::kError, 1});
  reg.Clear("site");
  EXPECT_TRUE(reg.Hit("site").ok());
  EXPECT_EQ(reg.HitCount("site"), 1u);
  EXPECT_TRUE(reg.ArmedSites().empty());
}

#if defined(CCDB_FAILPOINTS)

// Fault injection through the full engine: every planted site must surface
// the injected status as a clean error — never a crash, never a half-built
// relation in the catalog.

Rational R(std::int64_t n, std::int64_t d = 1) {
  return Rational(BigInt(n), BigInt(d));
}

ConstraintDatabase PaperDb() {
  ConstraintDatabase db;
  EXPECT_TRUE(db.Define("S(x, y) := 4*x^2 - y - 20*x + 25 <= 0").ok());
  EXPECT_TRUE(db.Define("L(x, y) := x + y <= 4 and 0 <= x and 0 <= y").ok());
  return db;
}

class FailpointInjectionTest : public FailpointRegistryTest {};

void ExpectInjected(const ConstraintDatabase& db, const std::string& site,
                    const std::string& query) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  reg.ClearAll();
  ASSERT_TRUE(reg.Configure(site + "=error@1").ok());
  auto result = db.Query(query);
  ASSERT_FALSE(result.ok()) << site << " did not fire for: " << query;
  EXPECT_EQ(result.status().code(), StatusCode::kInternal) << site;
  EXPECT_GE(reg.HitCount(site), 1u) << site;
  // The engine recovered: the same query succeeds once the site is inert.
  reg.ClearAll();
  auto retry = db.Query(query);
  EXPECT_TRUE(retry.ok()) << site << ": " << retry.status().ToString();
}

TEST_F(FailpointInjectionTest, CatalogAddNeverLeaksHalfBuiltRelation) {
  ConstraintDatabase db = PaperDb();
  ASSERT_TRUE(
      FailpointRegistry::Global().Configure("catalog.add=error@1").ok());
  Status status = db.Define("T(x) := x <= 1");
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_FALSE(db.catalog().HasRelation("T"));
  // The failed definition left the database fully usable.
  FailpointRegistry::Global().ClearAll();
  EXPECT_TRUE(db.Define("T(x) := x <= 1").ok());
  EXPECT_TRUE(db.catalog().HasRelation("T"));
}

TEST_F(FailpointInjectionTest, QeDriver) {
  ConstraintDatabase db = PaperDb();
  ExpectInjected(db, "qe.drive", "exists y (S(x, y) and y <= 0)");
}

TEST_F(FailpointInjectionTest, FourierMotzkin) {
  ConstraintDatabase db = PaperDb();
  ExpectInjected(db, "qe.fm", "exists y (L(x, y))");
}

TEST_F(FailpointInjectionTest, CadProjection) {
  ConstraintDatabase db = PaperDb();
  ExpectInjected(db, "cad.project", "exists y (S(x, y) and y <= 0)");
}

TEST_F(FailpointInjectionTest, CadBase) {
  ConstraintDatabase db = PaperDb();
  ExpectInjected(db, "cad.base", "exists y (S(x, y) and y <= 0)");
}

TEST_F(FailpointInjectionTest, CadLift) {
  ConstraintDatabase db = PaperDb();
  ExpectInjected(db, "cad.lift", "exists y (S(x, y) and y <= 0)");
}

TEST_F(FailpointInjectionTest, CalcFInstantiation) {
  ConstraintDatabase db = PaperDb();
  ExpectInjected(db, "calcf.instantiate", "exists y (S(x, y) and y <= 0)");
}

TEST_F(FailpointInjectionTest, CalcFAggregate) {
  ConstraintDatabase db = PaperDb();
  ExpectInjected(db, "calcf.aggregate", "LENGTH[x](L(x, 0))(z)");
}

TEST_F(FailpointInjectionTest, NumericQuadrature) {
  // The unit disc's slice bounds are sqrt graphs, not polynomials, so
  // SURFACE must take the adaptive-quadrature path (the parabola region
  // integrates exactly and would never reach the failpoint).
  ConstraintDatabase db = PaperDb();
  ASSERT_TRUE(db.Define("C(x, y) := x^2 + y^2 - 1 <= 0").ok());
  ExpectInjected(db, "numeric.quadrature", "SURFACE[x, y](C(x, y))(z)");
}

TEST_F(FailpointInjectionTest, NumericEvalThroughSolve) {
  ConstraintDatabase db = PaperDb();
  ASSERT_TRUE(
      FailpointRegistry::Global().Configure("numeric.eval=error@1").ok());
  auto solutions = db.Solve("exists y (S(x, y) and y <= 0)", R(1, 1000000));
  ASSERT_FALSE(solutions.ok());
  EXPECT_EQ(solutions.status().code(), StatusCode::kInternal);
  FailpointRegistry::Global().ClearAll();
  auto retry = db.Solve("exists y (S(x, y) and y <= 0)", R(1, 1000000));
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
}

TEST_F(FailpointInjectionTest, DatalogIteration) {
  DatalogProgram program;
  program.idb_arities["Reach"] = 2;
  DatalogRule base;
  base.head = "Reach";
  base.head_vars = {0, 1};
  base.body.push_back(DatalogLiteral::Rel("Edge", {0, 1}));
  program.rules.push_back(base);

  ConstraintRelation edge(2);
  GeneralizedTuple t;
  t.atoms.emplace_back(Polynomial::Var(1) - Polynomial::Var(0) -
                           Polynomial(1),
                       RelOp::kEq);
  edge.AddTuple(std::move(t));
  std::map<std::string, ConstraintRelation> edb;
  edb.emplace("Edge", edge);

  ASSERT_TRUE(
      FailpointRegistry::Global().Configure("datalog.iteration=error@1").ok());
  auto result = EvaluateDatalog(program, edb, DatalogOptions{}, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  FailpointRegistry::Global().ClearAll();
  auto retry = EvaluateDatalog(program, edb, DatalogOptions{}, nullptr);
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
}

TEST_F(FailpointInjectionTest, InjectedExhaustionDegradesOnLadder) {
  // An exhaust injection on the first (full-quality) attempt: the ladder
  // retries at reduced precision, where the now-inert site lets the linear
  // query through — a deterministic end-to-end degradation.
  ConstraintDatabase db = PaperDb();
  ASSERT_TRUE(FailpointRegistry::Global().Configure("qe.fm=exhaust@1").ok());
  QueryVerdict verdict;
  auto result =
      db.QueryWithPolicy("exists y (L(x, y))", QueryPolicy{}, &verdict);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(verdict.ok);
  EXPECT_EQ(verdict.rung, "reduced-precision");
  EXPECT_EQ(verdict.attempts, 2);
  ASSERT_EQ(verdict.exhausted_rungs.size(), 1u);
  EXPECT_NE(verdict.exhausted_rungs[0].find("full"), std::string::npos);
}

TEST_F(FailpointInjectionTest, UndefinedInjectionIsNotRetried) {
  // kUndefined is a semantic outcome; the ladder must not retry it.
  ConstraintDatabase db = PaperDb();
  ASSERT_TRUE(
      FailpointRegistry::Global().Configure("qe.drive=undefined@1").ok());
  QueryVerdict verdict;
  auto result =
      db.QueryWithPolicy("exists y (L(x, y))", QueryPolicy{}, &verdict);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUndefined);
  EXPECT_EQ(verdict.attempts, 1);
}

#endif  // CCDB_FAILPOINTS

}  // namespace
}  // namespace ccdb
