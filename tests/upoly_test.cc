#include "poly/upoly.h"

#include <random>

#include <gtest/gtest.h>

namespace ccdb {
namespace {

Rational R(std::int64_t n, std::int64_t d = 1) {
  return Rational(BigInt(n), BigInt(d));
}

UPoly FromInts(std::initializer_list<std::int64_t> coeffs) {
  std::vector<Rational> c;
  for (std::int64_t v : coeffs) c.emplace_back(BigInt(v));
  return UPoly(std::move(c));
}

TEST(UPolyTest, ConstructionTrimsLeadingZeros) {
  UPoly p({R(1), R(2), R(0), R(0)});
  EXPECT_EQ(p.degree(), 1);
  EXPECT_EQ(UPoly({R(0)}).degree(), -1);
  EXPECT_TRUE(UPoly().is_zero());
  EXPECT_EQ(UPoly::Constant(R(5)).degree(), 0);
  EXPECT_EQ(UPoly::X().degree(), 1);
  EXPECT_EQ(UPoly::Monomial(R(3), 4).degree(), 4);
}

TEST(UPolyTest, FromToPolynomial) {
  // 4x^2 - 20x + 25 in variable 0.
  Polynomial p = Polynomial(4) * Polynomial::Var(0).Pow(2) -
                 Polynomial(20) * Polynomial::Var(0) + Polynomial(25);
  auto u = UPoly::FromPolynomial(p, 0);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->degree(), 2);
  EXPECT_EQ(u->Evaluate(R(5, 2)), R(0));
  EXPECT_EQ(u->ToPolynomial(0), p);

  Polynomial bivariate = p + Polynomial::Var(1);
  EXPECT_FALSE(UPoly::FromPolynomial(bivariate, 0).ok());
}

TEST(UPolyTest, ArithmeticAndEvalHomomorphism) {
  std::mt19937_64 rng(41);
  std::uniform_int_distribution<std::int64_t> dist(-9, 9);
  auto random_upoly = [&]() {
    std::vector<Rational> c;
    int deg = static_cast<int>(rng() % 5);
    for (int i = 0; i <= deg; ++i) c.push_back(R(dist(rng)));
    return UPoly(std::move(c));
  };
  for (int i = 0; i < 200; ++i) {
    UPoly a = random_upoly();
    UPoly b = random_upoly();
    Rational x = R(dist(rng), 1 + static_cast<std::int64_t>(rng() % 3));
    EXPECT_EQ((a + b).Evaluate(x), a.Evaluate(x) + b.Evaluate(x));
    EXPECT_EQ((a - b).Evaluate(x), a.Evaluate(x) - b.Evaluate(x));
    EXPECT_EQ((a * b).Evaluate(x), a.Evaluate(x) * b.Evaluate(x));
  }
}

TEST(UPolyTest, DivModInvariant) {
  std::mt19937_64 rng(43);
  std::uniform_int_distribution<std::int64_t> dist(-9, 9);
  auto random_upoly = [&](int max_deg) {
    std::vector<Rational> c;
    int deg = static_cast<int>(rng() % (max_deg + 1));
    for (int i = 0; i <= deg; ++i) c.push_back(R(dist(rng)));
    return UPoly(std::move(c));
  };
  for (int i = 0; i < 200; ++i) {
    UPoly a = random_upoly(6);
    UPoly b = random_upoly(3);
    if (b.is_zero()) continue;
    auto [q, r] = a.DivMod(b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r.degree(), b.degree());
  }
}

TEST(UPolyTest, DivideExact) {
  UPoly a = FromInts({-1, 0, 1});      // x^2 - 1
  UPoly b = FromInts({1, 1});          // x + 1
  auto q = a.DivideExact(b);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(*q, FromInts({-1, 1}));    // x - 1
  EXPECT_FALSE(a.DivideExact(FromInts({2, 1})).ok());  // x + 2 doesn't divide
}

TEST(UPolyTest, GcdKnownFactors) {
  UPoly a = FromInts({-1, 0, 1});            // (x-1)(x+1)
  UPoly b = FromInts({1, 2, 1});             // (x+1)^2
  EXPECT_EQ(UPoly::Gcd(a, b), FromInts({1, 1}));  // monic x + 1
  EXPECT_EQ(UPoly::Gcd(a, FromInts({2, 1})).degree(), 0);  // coprime -> 1
  EXPECT_EQ(UPoly::Gcd(UPoly(), UPoly()), UPoly());
  EXPECT_EQ(UPoly::Gcd(a, UPoly()), a.MakeMonic());
}

TEST(UPolyTest, SquarefreePartAndYun) {
  // f = (x-1)^2 (x+2)^3 x.
  UPoly f = FromInts({-1, 1}) * FromInts({-1, 1}) * FromInts({2, 1}) *
            FromInts({2, 1}) * FromInts({2, 1}) * FromInts({0, 1});
  UPoly sf = f.SquarefreePart();
  // Squarefree part = (x-1)(x+2)x, monic degree 3.
  EXPECT_EQ(sf.degree(), 3);
  EXPECT_EQ(sf, (FromInts({-1, 1}) * FromInts({2, 1}) * FromInts({0, 1})));

  auto factors = f.SquarefreeDecomposition();
  ASSERT_EQ(factors.size(), 3u);
  EXPECT_EQ(factors[0], FromInts({0, 1}));   // multiplicity 1: x
  EXPECT_EQ(factors[1], FromInts({-1, 1}));  // multiplicity 2: x-1
  EXPECT_EQ(factors[2], FromInts({2, 1}));   // multiplicity 3: x+2
  // Reassemble.
  UPoly reassembled = UPoly::Constant(R(1));
  for (std::size_t i = 0; i < factors.size(); ++i) {
    for (std::size_t k = 0; k <= i; ++k) reassembled = reassembled * factors[i];
  }
  EXPECT_EQ(reassembled, f.MakeMonic());
}

TEST(UPolyTest, DerivativeAndCompose) {
  UPoly f = FromInts({25, -20, 4});  // 4x^2 - 20x + 25
  EXPECT_EQ(f.Derivative(), FromInts({-20, 8}));
  // Compose with x+1: 4(x+1)^2 - 20(x+1) + 25 = 4x^2 - 12x + 9.
  EXPECT_EQ(f.Compose(FromInts({1, 1})), FromInts({9, -12, 4}));
  EXPECT_EQ(UPoly::Constant(R(7)).Derivative(), UPoly());
}

TEST(UPolyTest, CauchyRootBound) {
  UPoly f = FromInts({25, -20, 4});
  Rational bound = f.CauchyRootBound();
  // Roots are 2.5 (double); bound must exceed 2.5.
  EXPECT_GT(bound, R(5, 2));
  // All roots of x^2 - 1 within bound 2.
  EXPECT_GE(FromInts({-1, 0, 1}).CauchyRootBound(), R(1));
}

TEST(UPolyTest, SturmChainCountsRoots) {
  // (x-1)(x-2)(x-3): three real roots.
  UPoly f = FromInts({-1, 1}) * FromInts({-2, 1}) * FromInts({-3, 1});
  auto chain = f.SturmChain();
  EXPECT_EQ(UPoly::SturmCountRoots(chain, R(0), R(4)), 3);
  EXPECT_EQ(UPoly::SturmCountRoots(chain, R(0), R(1)), 1);    // (0,1] has 1
  EXPECT_EQ(UPoly::SturmCountRoots(chain, R(1), R(3)), 2);    // (1,3] has 2,3
  EXPECT_EQ(UPoly::SturmCountRoots(chain, R(4), R(10)), 0);
  // x^2 + 1: no real roots.
  auto chain2 = FromInts({1, 0, 1}).SturmChain();
  EXPECT_EQ(UPoly::SturmCountRoots(chain2, R(-10), R(10)), 0);
}

TEST(UPolyTest, SignVariations) {
  EXPECT_EQ(FromInts({-1, 0, 1}).SignVariations(), 1);   // x^2 - 1
  EXPECT_EQ(FromInts({1, -3, 3, -1}).SignVariations(), 3);
  EXPECT_EQ(FromInts({1, 2, 3}).SignVariations(), 0);
}

TEST(UPolyTest, IntervalEvaluation) {
  UPoly f = FromInts({25, -20, 4});
  Interval enclosure = f.EvaluateInterval(Interval(R(2), R(3)));
  // f on [2,3] attains 0 at 2.5 and values up to f(3)=... containment check:
  for (std::int64_t num = 20; num <= 30; ++num) {
    Rational x = R(num, 10);
    EXPECT_TRUE(enclosure.Contains(f.Evaluate(x)));
  }
}

TEST(UPolyTest, ToString) {
  EXPECT_EQ(FromInts({25, -20, 4}).ToString(), "4*x^2 - 20*x + 25");
  EXPECT_EQ(FromInts({0, 1}).ToString(), "x");
  EXPECT_EQ(UPoly().ToString(), "0");
  EXPECT_EQ(FromInts({-1, -1}).ToString(), "-x - 1");
}

}  // namespace
}  // namespace ccdb
