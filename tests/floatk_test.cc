#include "arith/floatk.h"

#include <random>

#include <gtest/gtest.h>

namespace ccdb {
namespace {

TEST(FloatKTest, NormalizationMakesMantissaOdd) {
  FloatK v(BigInt(8), 0);  // 8 = 1 * 2^3
  EXPECT_EQ(v.mantissa(), BigInt(1));
  EXPECT_EQ(v.exponent(), 3);
  EXPECT_EQ(v.ToRational(), Rational(8));

  FloatK zero(BigInt(0), 17);
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.exponent(), 0);
}

TEST(FloatKTest, FromRationalExactDyadic) {
  FpFormat format = FpFormat::ForK(10);
  auto v = FloatK::FromRational(Rational(BigInt(3), BigInt(4)), format,
                                FpMode::kExact);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->ToRational(), Rational(BigInt(3), BigInt(4)));
}

TEST(FloatKTest, ExactModeRejectsNonDyadic) {
  FpFormat format = FpFormat::ForK(10);
  auto v = FloatK::FromRational(Rational(BigInt(1), BigInt(3)), format,
                                FpMode::kExact);
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kUndefined);
}

TEST(FloatKTest, ExactModeRejectsOverPreciseMantissa) {
  FpFormat format = FpFormat::ForK(4);  // mantissa at most 4 bits
  auto fits = FloatK::FromRational(Rational(15), format, FpMode::kExact);
  EXPECT_TRUE(fits.ok());
  auto too_wide = FloatK::FromRational(Rational(17), format, FpMode::kExact);
  EXPECT_FALSE(too_wide.ok());
  EXPECT_EQ(too_wide.status().code(), StatusCode::kUndefined);
}

TEST(FloatKTest, RoundModeRoundsToNearest) {
  FpFormat format = FpFormat::ForK(4);
  // 17 rounds to 16 (mantissa 1, exponent 4) under 4-bit mantissa.
  auto v = FloatK::FromRational(Rational(17), format, FpMode::kRound);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->ToRational(), Rational(16));
  // 1/3 rounds to a nearby dyadic (wider exponent range so the scaled
  // mantissa's exponent fits).
  FpFormat wide{4, 20};
  auto third = FloatK::FromRational(Rational(BigInt(1), BigInt(3)), wide,
                                    FpMode::kRound);
  ASSERT_TRUE(third.ok());
  double err = std::abs(third->ToDouble() - 1.0 / 3.0);
  EXPECT_LT(err, 1.0 / 32.0);  // within one ulp at 4-bit precision
}

TEST(FloatKTest, RoundTiesToEven) {
  FpFormat format = FpFormat::ForK(3);
  // With 3 mantissa bits: representables around 9 are 8 and 10 (5*2).
  // 9 is exactly halfway; ties-to-even selects 8 (mantissa 100 even pre-norm).
  auto v = FloatK::FromRational(Rational(9), format, FpMode::kRound);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->ToRational(), Rational(8));
}

TEST(FloatKTest, ExponentOverflowUndefined) {
  FpFormat format = FpFormat::ForK(8);  // exponent bound 8
  Rational huge = Rational(BigInt::Pow2(200));
  auto v = FloatK::FromRational(huge, format, FpMode::kRound);
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kUndefined);

  Rational tiny(BigInt(1), BigInt::Pow2(200));
  auto w = FloatK::FromRational(tiny, format, FpMode::kRound);
  EXPECT_FALSE(w.ok());
}

TEST(FloatKTest, ArithmeticExactWhenRepresentable) {
  FpFormat format = FpFormat::ForK(20);
  FloatK a = FloatK::FromInt(100);
  FloatK b = FloatK::FromInt(37);
  auto sum = FloatK::Add(a, b, format, FpMode::kExact);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->ToRational(), Rational(137));
  auto product = FloatK::Mul(a, b, format, FpMode::kExact);
  ASSERT_TRUE(product.ok());
  EXPECT_EQ(product->ToRational(), Rational(3700));
  auto difference = FloatK::Sub(a, b, format, FpMode::kExact);
  ASSERT_TRUE(difference.ok());
  EXPECT_EQ(difference->ToRational(), Rational(63));
}

TEST(FloatKTest, DistributivityFailsUnderRounding) {
  // The paper's motivating observation (Section 4): "two expressions
  // a*(b+c) and (a*b)+(a*c) may have different values" in F_k, i.e. the
  // distributive law fails. Search a small grid for a witness.
  FpFormat format{4, 30};
  int witnesses = 0;
  for (std::int64_t an = 1; an <= 15 && witnesses == 0; ++an) {
    for (std::int64_t bn = 1; bn <= 15 && witnesses == 0; ++bn) {
      for (std::int64_t cn = 1; cn <= 15; ++cn) {
        FloatK a = FloatK::FromInt(an);
        FloatK b = FloatK::FromInt(bn);
        FloatK c(BigInt(cn), -4);  // cn / 16
        auto bc = FloatK::Add(b, c, format, FpMode::kRound);
        auto ab = FloatK::Mul(a, b, format, FpMode::kRound);
        auto ac = FloatK::Mul(a, c, format, FpMode::kRound);
        if (!bc.ok() || !ab.ok() || !ac.ok()) continue;
        auto lhs = FloatK::Mul(a, *bc, format, FpMode::kRound);
        auto rhs = FloatK::Add(*ab, *ac, format, FpMode::kRound);
        if (!lhs.ok() || !rhs.ok()) continue;
        if (lhs->ToRational() != rhs->ToRational()) {
          ++witnesses;
          break;
        }
      }
    }
  }
  EXPECT_GT(witnesses, 0)
      << "expected some (a,b,c) to break distributivity at k=4";
}

TEST(FloatKTest, FromDoubleRoundTrip) {
  for (double d : {0.0, 1.0, -1.0, 0.5, 3.141592653589793, -12345.6789,
                   1e-30, 1e30}) {
    FloatK v = FloatK::FromDouble(d);
    EXPECT_DOUBLE_EQ(v.ToDouble(), d);
  }
}

TEST(FloatKTest, RoundingErrorWithinUlp) {
  std::mt19937_64 rng(5);
  std::uniform_int_distribution<std::int64_t> dist(1, 1000000);
  FpFormat format = FpFormat::ForK(12);
  for (int i = 0; i < 300; ++i) {
    Rational value(BigInt(dist(rng)), BigInt(dist(rng)));
    auto rounded = FloatK::FromRational(value, format, FpMode::kRound);
    if (!rounded.ok()) continue;  // extreme exponents can overflow
    Rational err = (rounded->ToRational() - value).Abs();
    // Relative error at most 2^-(k) (half ulp of a k-bit mantissa).
    Rational bound = value.Abs() * Rational(BigInt(1), BigInt::Pow2(12));
    EXPECT_LE(err, bound) << value.ToString();
  }
}

TEST(FloatKTest, ToStringPairNotation) {
  FloatK v(BigInt(5), -4);
  EXPECT_EQ(v.ToString(), "[5,-4]");
}

}  // namespace
}  // namespace ccdb
