#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/config.h"
#include "engine/database.h"
#include "engine/session.h"
#include "storage/catalog.h"
#include "storage/wal.h"

namespace ccdb {
namespace {

// Snapshot isolation under concurrency: readers racing a mutation storm
// must only ever observe complete catalog versions — a snapshot's content
// is byte-identical to the state the writer published under that version,
// never a half-applied mutation. Run under TSan to also certify the
// catalog's memory ordering.

std::string TempDir(const std::string& leaf) {
  std::string dir = ::testing::TempDir() + leaf;
  std::string cmd = "rm -rf '" + dir + "'";
  EXPECT_EQ(std::system(cmd.c_str()), 0);
  return dir;
}

TEST(SnapshotIsolationTest, ReadersSeeOnlyCompleteVersionsDuringStorm) {
  constexpr int kReaders = 8;
  constexpr int kMutations = 200;

  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelationFromText("Base(x) := x <= 0").ok());

  // The writer publishes the authoritative (version -> serialized state)
  // history. Any version a reader snapshots must appear here with exactly
  // this content — that is the "no torn catalog" property.
  std::mutex history_mu;
  std::map<std::uint64_t, std::string> history;
  {
    auto snapshot = catalog.Snapshot();
    std::lock_guard<std::mutex> lock(history_mu);
    history[snapshot->version()] = snapshot->Serialize();
  }

  std::atomic<bool> done{false};
  std::vector<std::string> reader_failures(kReaders);
  std::vector<std::vector<std::pair<std::uint64_t, std::string>>> observed(
      kReaders);
  // Readers publish how many snapshots they have taken so the writer can
  // keep the storm alive until everyone has actually gotten one in: the
  // fixed mutation count alone can finish before the reader threads are
  // even scheduled (the arithmetic fast paths made the storm ~10x
  // shorter), which would make the final coverage check vacuous.
  std::atomic<std::uint64_t> observed_count[kReaders] = {};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::uint64_t last_version = 0;
      while (!done.load(std::memory_order_acquire)) {
        auto snapshot = catalog.Snapshot();
        // Versions a single reader observes never go backwards.
        if (snapshot->version() < last_version) {
          reader_failures[r] = "version went backwards: " +
                               std::to_string(snapshot->version()) + " < " +
                               std::to_string(last_version);
          return;
        }
        last_version = snapshot->version();
        // A snapshot is internally coherent: every name it lists resolves,
        // and Base (never dropped) is always present.
        if (!snapshot->HasRelation("Base")) {
          reader_failures[r] = "snapshot lost the Base relation";
          return;
        }
        for (const std::string& name : snapshot->RelationNames()) {
          if (!snapshot->GetRelation(name).ok()) {
            reader_failures[r] = "listed relation did not resolve: " + name;
            return;
          }
        }
        observed[r].emplace_back(snapshot->version(), snapshot->Serialize());
        observed_count[r].fetch_add(1, std::memory_order_release);
      }
    });
  }

  // Single writer: define/drop churn. After each mutation it records the
  // new version's exact serialization in the history map. Past the fixed
  // mutation count, keep churning until every reader has snapshotted at
  // least once (bounded by a generous wall-clock cap so a pathologically
  // starved reader fails the coverage check instead of hanging the test).
  const auto storm_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  auto all_readers_observed = [&] {
    for (int r = 0; r < kReaders; ++r) {
      if (observed_count[r].load(std::memory_order_acquire) == 0) return false;
    }
    return true;
  };
  for (int i = 0; i < kMutations || (!all_readers_observed() &&
                                     std::chrono::steady_clock::now() <
                                         storm_deadline);
       ++i) {
    const std::string name = "R" + std::to_string(i % 10);
    if (catalog.HasRelation(name)) {
      ASSERT_TRUE(catalog.DropRelation(name).ok());
    } else {
      ASSERT_TRUE(catalog
                      .AddRelationFromText(name + "(x, y) := x + y <= " +
                                           std::to_string(i))
                      .ok());
    }
    auto snapshot = catalog.Snapshot();
    {
      std::lock_guard<std::mutex> lock(history_mu);
      history[snapshot->version()] = snapshot->Serialize();
    }
    if (i >= kMutations) std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  for (int r = 0; r < kReaders; ++r) {
    EXPECT_EQ(reader_failures[r], "") << "reader " << r;
  }

  // Every observed (version, content) pair matches the writer's history —
  // no reader ever saw a version the writer didn't publish, nor a
  // published version with different content.
  std::size_t checked = 0;
  for (int r = 0; r < kReaders; ++r) {
    for (const auto& [version, text] : observed[r]) {
      auto it = history.find(version);
      ASSERT_NE(it, history.end())
          << "reader " << r << " saw unpublished version " << version;
      EXPECT_EQ(it->second, text)
          << "reader " << r << " saw torn content for version " << version;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u) << "readers never got a snapshot in";
}

TEST(SnapshotIsolationTest, QueriesDuringMutationStormUseOneSnapshot) {
  // The database-level variant: concurrent Query() calls while relations
  // churn must each succeed or fail cleanly against one catalog version —
  // never crash, never mix versions mid-query.
  constexpr int kReaders = 8;

  ConstraintDatabase db;
  ASSERT_TRUE(db.Define("S(x, y) := x + y <= 10 and x >= 0 and y >= 0").ok());

  std::atomic<bool> done{false};
  std::vector<std::string> failures(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      while (!done.load(std::memory_order_acquire)) {
        auto result = db.Query("exists y (S(x, y) and y <= 1)");
        if (!result.ok()) {
          failures[r] = result.status().ToString();
          return;
        }
      }
    });
  }

  for (int i = 0; i < 100; ++i) {
    const std::string name = "T" + std::to_string(i % 5);
    if (i % 2 == 0) {
      Status st = db.Define(name + "(x) := x <= " + std::to_string(i));
      ASSERT_TRUE(st.ok() || st.code() == StatusCode::kAlreadyExists)
          << st.ToString();
    } else {
      Status st = db.Drop(name);
      ASSERT_TRUE(st.ok() || st.code() == StatusCode::kNotFound)
          << st.ToString();
    }
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  for (int r = 0; r < kReaders; ++r) {
    EXPECT_EQ(failures[r], "") << "reader " << r;
  }
}

std::string Render(const StatusOr<CalcFResult>& result) {
  if (!result.ok()) return "error: " + result.status().ToString();
  std::string out = result->relation.ToString(result->column_names);
  if (result->has_scalar) {
    out += "|scalar=" + (result->scalar.exact
                             ? result->scalar.exact_value.ToString()
                             : std::to_string(result->scalar.approx_value));
  }
  return out;
}

TEST(SnapshotIsolationTest, PinnedSessionsMatchSerialReplayDuringStorm) {
  // The MVCC acceptance test: 8 reader SESSIONS (mixed configs — half
  // plan-off, half plan-on at 2 threads) run multi-round queries against
  // pinned snapshots while one writer defines / inserts / drops. Every
  // result a reader observed must be byte-identical to a serial replay of
  // the same query against a fresh database rebuilt from the exact
  // snapshot the session had pinned — i.e. concurrent mutations are
  // completely invisible to a pinned reader, and snapshot content fully
  // determines the answer at every session config.
  constexpr int kReaders = 8;

  ConstraintDatabase db;
  ASSERT_TRUE(db.Define("S(x, y) := x + y <= 10 and x >= 0 and y >= 0").ok());

  struct Observation {
    std::string snapshot_text;
    std::vector<std::pair<std::string, std::string>> results;  // query, render
  };

  std::atomic<bool> done{false};
  std::vector<std::vector<Observation>> observations(kReaders);
  std::atomic<std::uint64_t> rounds_done[kReaders] = {};

  const std::vector<std::string> kQueries = {
      "exists y (S(x, y) and y <= 1)",
      "S(x, y) and x >= 9",
      "T0(x) and x >= 0",  // churned: exists in some snapshots only
  };

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      EngineConfig config = EngineConfig::Process()
                                .WithPlan(r % 2 == 0)
                                .WithThreads(r % 2 == 0 ? 1 : 2);
      std::unique_ptr<Session> session = db.OpenSession(config);
      while (!done.load(std::memory_order_acquire)) {
        session->PinSnapshot();
        Observation obs;
        obs.snapshot_text = session->snapshot()->Serialize();
        for (const std::string& query : kQueries) {
          obs.results.emplace_back(query, Render(session->Query(query)));
        }
        // The pin must have held across all queries of the round: the
        // serialization is unchanged even though the writer kept mutating.
        ASSERT_EQ(session->snapshot()->Serialize(), obs.snapshot_text)
            << "reader " << r << ": pinned snapshot changed mid-round";
        observations[r].push_back(std::move(obs));
        rounds_done[r].fetch_add(1, std::memory_order_release);
      }
      session->Unpin();
    });
  }

  // Writer: churn T0..T4 (define/drop) and grow S (append-only inserts),
  // until every reader has finished at least two full rounds.
  const auto storm_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  auto all_readers_round_twice = [&] {
    for (int r = 0; r < kReaders; ++r) {
      if (rounds_done[r].load(std::memory_order_acquire) < 2) return false;
    }
    return true;
  };
  for (int i = 0; i < 60 || (!all_readers_round_twice() &&
                             std::chrono::steady_clock::now() <
                                 storm_deadline);
       ++i) {
    const std::string name = "T" + std::to_string(i % 5);
    if (i % 3 == 0) {
      ASSERT_TRUE(
          db.Insert("S(x, y) := x + y <= " + std::to_string(11 + i) +
                    " and x >= " + std::to_string(20 + i))
              .ok());
    } else if (db.catalog().HasRelation(name)) {
      ASSERT_TRUE(db.Drop(name).ok());
    } else {
      ASSERT_TRUE(db.Define(name + "(x) := x <= " + std::to_string(i)).ok());
    }
    if (i >= 60) std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  // Serial replay: rebuild each pinned state in a fresh database and rerun
  // the queries single-threaded through the facade. Replays dedupe on the
  // snapshot text (readers pin the same versions repeatedly).
  std::map<std::string, std::map<std::string, std::string>> replayed;
  std::size_t checked = 0;
  for (int r = 0; r < kReaders; ++r) {
    ASSERT_GE(observations[r].size(), 2u) << "reader " << r;
    for (const Observation& obs : observations[r]) {
      auto it = replayed.find(obs.snapshot_text);
      if (it == replayed.end()) {
        StatusOr<Catalog> catalog = Catalog::Deserialize(obs.snapshot_text);
        ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
        ConstraintDatabase serial;
        for (const std::string& name : catalog->RelationNames()) {
          StatusOr<ConstraintRelation> rel = catalog->GetRelation(name);
          ASSERT_TRUE(rel.ok());
          ASSERT_TRUE(serial.Register(name, std::move(*rel)).ok());
        }
        std::map<std::string, std::string> results;
        for (const std::string& query : kQueries) {
          results[query] = Render(serial.Query(query));
        }
        it = replayed.emplace(obs.snapshot_text, std::move(results)).first;
      }
      for (const auto& [query, rendered] : obs.results) {
        EXPECT_EQ(rendered, it->second[query])
            << "reader " << r << " diverged from serial replay on: " << query;
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(SnapshotIsolationTest, VersionStrictlyMonotoneAcrossDurableReopen) {
  const std::string dir = TempDir("ccdb_snapshot_iso_reopen");
  DurabilityOptions options;
  options.fsync = WalFsyncPolicy::kOff;  // in-process reopen, no crash

  std::uint64_t version_before = 0;
  {
    auto db = ConstraintDatabase::OpenDurable(dir, {}, options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE(db.value().Define("A(x) := x <= 1").ok());
    ASSERT_TRUE(db.value().Define("B(x) := x <= 2").ok());
    version_before = db.value().catalog().version();
    EXPECT_GT(version_before, 0u);
  }  // close checkpoints

  std::uint64_t version_reopened = 0;
  {
    auto db = ConstraintDatabase::OpenDurable(dir, {}, options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    version_reopened = db.value().catalog().version();
    // Strictly greater: a recovered catalog may never reuse a pre-close
    // version, or memo caches keyed on (query, version) could alias
    // pre-crash state.
    EXPECT_GT(version_reopened, version_before);
    ASSERT_TRUE(db.value().Define("C(x) := x <= 3").ok());
    EXPECT_GT(db.value().catalog().version(), version_reopened);
  }

  EXPECT_EQ(std::system(("rm -rf '" + dir + "'").c_str()), 0);
}

}  // namespace
}  // namespace ccdb
