// EXPLAIN ANALYZE / profiling tests (Observability v2, DESIGN.md §12).
//
// The hard contract under test: profiling is OBSERVATION ONLY. Arming a
// ProfileSink must never change a query's answer — the profiled run is
// byte-identical to the unprofiled one at every CCDB_PLAN × thread
// setting. On top of that, the attribution tree must be internally
// consistent (0 <= exclusive <= inclusive at every node) and the span
// profile must fold trace events into the right paths.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "base/memo.h"
#include "base/profile.h"
#include "base/thread_pool.h"
#include "base/trace.h"
#include "constraint/atom.h"
#include "constraint/formula.h"
#include "datalog/datalog.h"
#include "engine/database.h"
#include "qe/qe.h"
#include "qe/qe_cache.h"

namespace ccdb {
namespace {

Polynomial V(int i) { return Polynomial::Var(i); }

// The mixed-fragment query of the bench: a dense-order disjunct, a linear
// disjunct, and a free leaf × CAD disjunct under one exists — exercises
// every fragment engine in one plan.
Formula MixedFragmentFormula() {
  Formula dense = Formula::And({Formula::Compare(V(0), RelOp::kLe, V(1)),
                                Formula::Compare(V(1), RelOp::kLe,
                                                 Polynomial(3))});
  Formula linear = Formula::And(
      {Formula::Compare(V(0) + Polynomial(2) * V(1), RelOp::kLe,
                        Polynomial(4)),
       Formula::Compare(Polynomial(-1), RelOp::kLe, V(1))});
  Formula poly = Formula::And(
      {Formula::Compare(V(0), RelOp::kLt, Polynomial(5)),
       Formula::Compare(V(0) * V(0) + V(1) * V(1), RelOp::kLe,
                        Polynomial(4))});
  return Formula::Exists(1, Formula::Or({dense, linear, poly}));
}

std::string RunQe(const Formula& formula, PlanToggle plan, int threads,
                  ProfileSink* sink) {
  ThreadPool pool(threads);
  QeOptions options;
  options.pool = &pool;
  options.plan = plan;
  options.profile = sink;
  auto result = EliminateQuantifiers(formula, 1, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? result->ToString() : "";
}

// Profiled and unprofiled answers are byte-identical at every
// plan × thread combination (and across them, as the determinism tests
// already pin).
TEST(ProfileTest, ObservationOnlyAcrossPlanAndThreads) {
  Formula mixed = MixedFragmentFormula();
  for (PlanToggle plan : {PlanToggle::kOff, PlanToggle::kOn}) {
    for (int threads : {1, 2, 8}) {
      QeResultCache().Clear();
      std::string unprofiled = RunQe(mixed, plan, threads, nullptr);
      QeResultCache().Clear();
      ProfileSink sink;
      std::string profiled = RunQe(mixed, plan, threads, &sink);
      EXPECT_EQ(unprofiled, profiled)
          << "plan=" << (plan == PlanToggle::kOn) << " threads=" << threads;
      EXPECT_EQ(sink.size(), 1u);
    }
  }
}

void CheckNodeInvariants(const ProfileNode& node) {
  EXPECT_GE(node.inclusive_us, 0) << node.label;
  EXPECT_GE(node.exclusive_us(), 0) << node.label;
  EXPECT_LE(node.exclusive_us(), node.inclusive_us) << node.label;
  EXPECT_FALSE(node.label.empty());
  for (const ProfileNode& child : node.children) CheckNodeInvariants(child);
}

// The planned tree mirrors the plan: a union root with one child per
// disjunct, every node obeying 0 <= exclusive <= inclusive, and the CAD
// block carrying the cell count.
TEST(ProfileTest, PlannedTreeShapeAndTimes) {
  QeResultCache().Clear();
  ProfileSink sink;
  RunQe(MixedFragmentFormula(), PlanToggle::kOn, 2, &sink);
  std::vector<ProfileNode> roots = sink.Take();
  ASSERT_EQ(roots.size(), 1u);
  const ProfileNode& root = roots[0];
  CheckNodeInvariants(root);
  EXPECT_EQ(root.label, "union");
  EXPECT_EQ(root.Counter("members"), 3u);
  ASSERT_EQ(root.children.size(), 3u);
  EXPECT_GT(root.Counter("cad_cells"), 0u);
  EXPECT_GT(root.Counter("fm_rounds"), 0u);
  EXPECT_GT(root.Counter("tuples_out"), 0u);
  // Exactly one subtree went through CAD and owns the cell count.
  std::uint64_t child_cells = 0;
  for (const ProfileNode& child : root.children) {
    child_cells += child.Counter("cad_cells");
    for (const ProfileNode& grandchild : child.children) {
      child_cells += grandchild.Counter("cad_cells");
    }
  }
  EXPECT_EQ(child_cells, root.Counter("cad_cells"));
  // Rendering mentions the engines and the timings.
  std::string rendered = root.ToString();
  EXPECT_NE(rendered.find("block["), std::string::npos);
  EXPECT_NE(rendered.find("ms"), std::string::npos);
  std::string json = root.ToJson();
  EXPECT_NE(json.find("\"label\":\"union\""), std::string::npos);
  EXPECT_NE(json.find("\"children\""), std::string::npos);
}

// The monolithic path reports engine-stage nodes instead of plan nodes.
TEST(ProfileTest, MonolithicTreeUsesEngineLabels) {
  QeResultCache().Clear();
  ProfileSink sink;
  RunQe(MixedFragmentFormula(), PlanToggle::kOff, 1, &sink);
  std::vector<ProfileNode> roots = sink.Take();
  ASSERT_EQ(roots.size(), 1u);
  CheckNodeInvariants(roots[0]);
  EXPECT_EQ(roots[0].label.rfind("qe", 0), 0u) << roots[0].label;
}

// A warm second run collapses to a single qe[cached] node that still
// carries the replayed counters.
TEST(ProfileTest, CachedRunReportsCacheHitNode) {
  if (!MemoCachesEnabled()) {
    GTEST_SKIP() << "memo caches disabled (CCDB_QE_CACHE=0): no cached node";
  }
  Formula mixed = MixedFragmentFormula();
  QeResultCache().Clear();
  RunQe(mixed, PlanToggle::kOn, 1, nullptr);  // warm the QE result cache
  ProfileSink sink;
  RunQe(mixed, PlanToggle::kOn, 1, &sink);
  std::vector<ProfileNode> roots = sink.Take();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0].label, "qe[cached]");
  EXPECT_EQ(roots[0].Counter("qe_cache_hits"), 1u);
  EXPECT_GT(roots[0].Counter("tuples_out"), 0u);
  EXPECT_TRUE(roots[0].children.empty());
}

// End-to-end: ExplainAnalyze returns the same answer as Query plus a
// populated profile.
TEST(ProfileTest, ExplainAnalyzeMatchesQuery) {
  ConstraintDatabase db;
  ASSERT_TRUE(db.Define("S(x, y) := 4*x^2 - y - 20*x + 25 <= 0").ok());
  const std::string text = "exists y (S(x, y) and y <= 0)";
  auto plain = db.Query(text);
  ASSERT_TRUE(plain.ok());
  auto analyzed = db.ExplainAnalyze(text);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  EXPECT_EQ(plain->relation.ToString(plain->column_names),
            analyzed->result.relation.ToString(
                analyzed->result.column_names));
  ASSERT_GE(analyzed->profile.qe_rounds.size(), 1u);
  for (const ProfileNode& round : analyzed->profile.qe_rounds) {
    CheckNodeInvariants(round);
  }
  EXPECT_GT(analyzed->profile.total_seconds, 0.0);
  EXPECT_GT(analyzed->profile.pool_threads, 0u);
  std::string rendered = analyzed->profile.ToString();
  EXPECT_NE(rendered.find("QUANTIFIER ELIMINATION"), std::string::npos);
  EXPECT_NE(rendered.find("qe round 1"), std::string::npos);
  std::string json = analyzed->profile.ToJson();
  EXPECT_NE(json.find("\"qe_rounds\""), std::string::npos);
  EXPECT_NE(json.find("\"caches\""), std::string::npos);
}

// Datalog with an armed sink reports one node per fixpoint round with
// one child per rule in rule order, and the fixpoint itself is
// byte-identical with or without profiling.
TEST(ProfileTest, DatalogRoundsReportPerRuleNodes) {
  // Reach(x,y) :- Edge(x,y).  Reach(x,y) :- Reach(x,z), Edge(z,y).
  DatalogProgram program;
  program.idb_arities["Reach"] = 2;
  {
    DatalogRule rule;
    rule.head = "Reach";
    rule.head_vars = {0, 1};
    rule.body.push_back(DatalogLiteral::Rel("Edge", {0, 1}));
    program.rules.push_back(rule);
  }
  {
    DatalogRule rule;
    rule.head = "Reach";
    rule.head_vars = {0, 1};
    rule.body.push_back(DatalogLiteral::Rel("Reach", {0, 2}));
    rule.body.push_back(DatalogLiteral::Rel("Edge", {2, 1}));
    program.rules.push_back(rule);
  }
  ConstraintRelation edge(2);
  GeneralizedTuple t;
  t.atoms.emplace_back(V(1) - V(0) - Polynomial(1), RelOp::kEq);
  t.atoms.emplace_back(-V(0), RelOp::kLe);
  t.atoms.emplace_back(V(0) - Polynomial(3), RelOp::kLe);
  edge.AddTuple(std::move(t));
  std::map<std::string, ConstraintRelation> edb;
  edb.emplace("Edge", edge);

  auto unprofiled = EvaluateDatalog(program, edb, DatalogOptions{});
  ASSERT_TRUE(unprofiled.ok()) << unprofiled.status().ToString();

  ProfileSink sink;
  DatalogOptions options;
  options.qe.profile = &sink;
  auto profiled = EvaluateDatalog(program, edb, options);
  ASSERT_TRUE(profiled.ok()) << profiled.status().ToString();
  EXPECT_EQ(unprofiled->at("Reach").ToString(),
            profiled->at("Reach").ToString());

  std::vector<ProfileNode> rounds = sink.Take();
  ASSERT_GE(rounds.size(), 2u);
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    EXPECT_EQ(rounds[i].label, "datalog.round[" + std::to_string(i) + "]");
    CheckNodeInvariants(rounds[i]);
    ASSERT_EQ(rounds[i].children.size(), 2u);
    EXPECT_EQ(rounds[i].children[0].label, "rule[0] Reach");
    EXPECT_EQ(rounds[i].children[1].label, "rule[1] Reach");
    EXPECT_EQ(rounds[i].Counter("rules"), 2u);
  }
}

// Span-profile fold: nesting is reconstructed per thread from the
// intervals; exclusive time subtracts nested children only.
TEST(ProfileTest, BuildSpanProfileFoldsNesting) {
  std::vector<TraceEvent> events;
  // Thread 0: outer [0, 100) containing inner [10, 40).
  events.push_back(TraceEvent{"outer", "qe", 0, 100, 0});
  events.push_back(TraceEvent{"inner", "qe", 10, 30, 0});
  // Same names on thread 1, NOT nested (disjoint), plus a second inner
  // occurrence inside outer.
  events.push_back(TraceEvent{"outer", "qe", 0, 50, 1});
  events.push_back(TraceEvent{"inner", "qe", 5, 10, 1});
  events.push_back(TraceEvent{"inner", "qe", 60, 20, 1});
  SpanProfile profile = BuildSpanProfile(events);
  EXPECT_EQ(profile.total_events, 5u);
  ASSERT_TRUE(profile.paths.count("outer"));
  ASSERT_TRUE(profile.paths.count("outer;inner"));
  ASSERT_TRUE(profile.paths.count("inner"));
  EXPECT_EQ(profile.paths["outer"].count, 2u);
  EXPECT_EQ(profile.paths["outer"].inclusive_us, 150);
  // outer exclusive = 150 - nested inner (30 on t0, 10 on t1) = 110.
  EXPECT_EQ(profile.paths["outer"].exclusive_us, 110);
  EXPECT_EQ(profile.paths["outer;inner"].count, 2u);
  EXPECT_EQ(profile.paths["outer;inner"].inclusive_us, 40);
  // The disjoint inner on thread 1 is a root path of its own.
  EXPECT_EQ(profile.paths["inner"].count, 1u);
  EXPECT_EQ(profile.paths["inner"].inclusive_us, 20);
  std::string rendered = profile.ToString();
  EXPECT_NE(rendered.find("outer;inner"), std::string::npos);
  std::string json = profile.ToJson();
  EXPECT_NE(json.find("\"total_events\":5"), std::string::npos);
}

// Leaf-only profile: zero-length child at the parent's start must not
// push exclusive time negative.
TEST(ProfileTest, ExclusiveClampsAtZero) {
  ProfileNode parent;
  parent.label = "p";
  parent.inclusive_us = 10;
  ProfileNode a, b;
  a.label = "a";
  a.inclusive_us = 7;
  b.label = "b";
  b.inclusive_us = 8;  // overlapping parallel children: 7 + 8 > 10
  parent.children = {a, b};
  EXPECT_EQ(parent.exclusive_us(), 0);
}

}  // namespace
}  // namespace ccdb
