#include "poly/resultant.h"

#include <gtest/gtest.h>

#include "poly/upoly.h"

namespace ccdb {
namespace {

Rational R(std::int64_t n, std::int64_t d = 1) {
  return Rational(BigInt(n), BigInt(d));
}

Polynomial X() { return Polynomial::Var(0); }
Polynomial Y() { return Polynomial::Var(1); }

TEST(DivideExactMvTest, ExactAndInexact) {
  Polynomial p = (X() + Y()) * (X() - Y());
  auto q = DivideExactMv(p, X() + Y());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(*q, X() - Y());
  EXPECT_FALSE(DivideExactMv(p, X() + Polynomial(1)).ok());
  auto zero = DivideExactMv(Polynomial(), X());
  ASSERT_TRUE(zero.ok());
  EXPECT_TRUE(zero->is_zero());
}

TEST(PseudoRemTest, MatchesDefinition) {
  // prem(a, b) = lc(b)^{da-db+1} a mod b.
  Polynomial a = X().Pow(3) + Y() * X() + Polynomial(1);
  Polynomial b = Polynomial(2) * X() + Y();
  Polynomial prem = PseudoRem(a, b, 0);
  // lc(b)^3 * a = q*b + prem with prem free of x.
  EXPECT_EQ(prem.DegreeIn(0), 0u);
  // Verify by evaluating both sides at x = -y/2 (the root of b):
  // prem(y) = 8 * a(-y/2, y).
  for (std::int64_t yi = -3; yi <= 3; ++yi) {
    Rational yv(yi);
    Rational expected = a.Evaluate({-yv / R(2), yv}) * R(8);
    EXPECT_EQ(prem.Evaluate({R(0), yv}), expected) << "y=" << yi;
  }
}

TEST(ResultantTest, UnivariateAgainstRootProducts) {
  // res(x^2-1, x^2-4) with roots {±1}, {±2}:
  // lc^... = prod (a_i - b_j) = (1-2)(1+2)(-1-2)(-1+2) = (-1)(3)(-3)(1) = 9.
  Polynomial a = X().Pow(2) - Polynomial(1);
  Polynomial b = X().Pow(2) - Polynomial(4);
  Polynomial res = Resultant(a, b, 0);
  ASSERT_TRUE(res.is_constant());
  EXPECT_EQ(res.constant_value(), R(9));
}

TEST(ResultantTest, SharedRootGivesZero) {
  Polynomial a = (X() - Polynomial(1)) * (X() - Polynomial(2));
  Polynomial b = (X() - Polynomial(1)) * (X() + Polynomial(5));
  EXPECT_TRUE(Resultant(a, b, 0).is_zero());
}

TEST(ResultantTest, SwapSignRule) {
  Polynomial a = X().Pow(3) - X() + Polynomial(1);
  Polynomial b = X().Pow(2) + Polynomial(2);
  Polynomial r1 = Resultant(a, b, 0);
  Polynomial r2 = Resultant(b, a, 0);
  // res(a,b) = (-1)^{3*2} res(b,a) = res(b,a).
  EXPECT_EQ(r1, r2);

  Polynomial c = X() + Polynomial(1);
  Polynomial r3 = Resultant(a, c, 0);
  Polynomial r4 = Resultant(c, a, 0);
  // (-1)^{3*1} = -1.
  EXPECT_EQ(r3, -r4);
}

TEST(ResultantTest, BivariateEliminatesVariable) {
  // p = y - x^2, q = y - 2x: res_y = 2x - x^2 (up to sign), roots x=0,2 are
  // exactly the x-coordinates of the intersection points.
  Polynomial p = Y() - X().Pow(2);
  Polynomial q = Y() - Polynomial(2) * X();
  Polynomial res = Resultant(p, q, 1);
  EXPECT_EQ(res.max_var(), 0);
  EXPECT_EQ(res.Evaluate({R(0), R(0)}), R(0));
  EXPECT_EQ(res.Evaluate({R(2), R(0)}), R(0));
  EXPECT_NE(res.Evaluate({R(1), R(0)}), R(0));
}

TEST(ResultantTest, PaperExampleProjection) {
  // The paper's query: exists y (4x^2 - y - 20x + 25 <= 0 and y <= 0).
  // The boundary interaction is res_y(4x^2-y-20x+25, y) = 4x^2-20x+25.
  Polynomial p = Polynomial(4) * X().Pow(2) - Y() - Polynomial(20) * X() +
                 Polynomial(25);
  Polynomial res = Resultant(p, Y(), 1);
  Polynomial expected =
      Polynomial(4) * X().Pow(2) - Polynomial(20) * X() + Polynomial(25);
  // res is ± the expected polynomial.
  EXPECT_TRUE(res == expected || res == -expected)
      << res.ToString({"x", "y"});
}

TEST(DiscriminantTest, Quadratic) {
  // disc(ax^2+bx+c) = b^2 - 4ac; here 4x^2 - 20x + 25: 400 - 400 = 0.
  Polynomial p =
      Polynomial(4) * X().Pow(2) - Polynomial(20) * X() + Polynomial(25);
  EXPECT_TRUE(Discriminant(p, 0).is_zero());

  Polynomial q = X().Pow(2) - Polynomial(1);  // disc = 4
  Polynomial d = Discriminant(q, 0);
  ASSERT_TRUE(d.is_constant());
  EXPECT_EQ(d.constant_value(), R(4));

  // Bivariate: disc_y(y^2 - x) = 4x (up to convention disc = 4x).
  Polynomial circle = Y().Pow(2) - X();
  Polynomial dy = Discriminant(circle, 1);
  EXPECT_EQ(dy, Polynomial(4) * X());
}

TEST(DiscriminantTest, CubicKnownValue) {
  // disc(x^3 + px + q) = -4p^3 - 27q^2; for x^3 - x: -4(-1)^3 = 4... with
  // p=-1,q=0: disc = 4.
  Polynomial f = X().Pow(3) - X();
  Polynomial d = Discriminant(f, 0);
  ASSERT_TRUE(d.is_constant());
  EXPECT_EQ(d.constant_value(), R(4));
}

TEST(MvGcdTest, UnivariateAgreesWithUPoly) {
  Polynomial a = (X() - Polynomial(1)).Pow(2) * (X() + Polynomial(3));
  Polynomial b = (X() - Polynomial(1)) * (X() - Polynomial(7));
  Polynomial g = MvGcd(a, b);
  EXPECT_EQ(g, X() - Polynomial(1));
}

TEST(MvGcdTest, BivariateCommonFactor) {
  Polynomial common = X() * Y() - Polynomial(1);
  Polynomial a = common * (X() + Y());
  Polynomial b = common * (X() - Y() + Polynomial(2));
  Polynomial g = MvGcd(a, b);
  EXPECT_EQ(g, common);
}

TEST(MvGcdTest, CoprimeGivesOne) {
  EXPECT_EQ(MvGcd(X() + Y(), X() - Y()), Polynomial(1));
  EXPECT_EQ(MvGcd(X().Pow(2) + Polynomial(1), X()), Polynomial(1));
}

TEST(MvGcdTest, ZeroCases) {
  EXPECT_TRUE(MvGcd(Polynomial(), Polynomial()).is_zero());
  EXPECT_EQ(MvGcd(Polynomial(), Polynomial(2) * X()), X());
  EXPECT_EQ(MvGcd(Polynomial(3), X()), Polynomial(1));
}

TEST(ContentTest, ContentAndPrimitivePart) {
  // p = y*(x^2) + y*(x) = y*x*(x+1): content in x is y (times units).
  Polynomial p = Y() * X().Pow(2) + Y() * X();
  Polynomial content = ContentIn(p, 0);
  EXPECT_EQ(content, Y());
  Polynomial pp = PrimitivePartIn(p, 0);
  EXPECT_EQ(pp * content, p);
  EXPECT_EQ(pp, X().Pow(2) + X());
}

TEST(SquarefreeTest, SquarefreePartIn) {
  Polynomial p = (Y() - X().Pow(2)).Pow(2) * (Y() + X());
  Polynomial sf = SquarefreePartIn(p, 1);
  Polynomial expected = ((Y() - X().Pow(2)) * (Y() + X())).IntegerNormalized();
  EXPECT_EQ(sf, expected);
}

TEST(SquarefreeBasisTest, SplitsCommonFactors) {
  Polynomial f = (X() - Polynomial(1)) * (X() - Polynomial(2));
  Polynomial g = (X() - Polynomial(2)) * (X() - Polynomial(3));
  auto basis = SquarefreeBasis({f, g});
  // Finest basis: {x-1, x-2, x-3}.
  ASSERT_EQ(basis.size(), 3u);
  std::vector<Polynomial> expected = {X() - Polynomial(1), X() - Polynomial(2),
                                      X() - Polynomial(3)};
  for (const Polynomial& e : expected) {
    bool found = false;
    for (const Polynomial& b : basis) {
      if (b == e) found = true;
    }
    EXPECT_TRUE(found) << e.ToString();
  }
}

TEST(SquarefreeBasisTest, DropsConstantsAndDuplicates) {
  Polynomial f = X() + Y();
  auto basis = SquarefreeBasis(
      {f, f.Scale(R(3)), Polynomial(5), Polynomial(), f.Pow(2)});
  ASSERT_EQ(basis.size(), 1u);
  EXPECT_EQ(basis[0], f);
}

TEST(SquarefreeBasisTest, PairwiseCoprimeOutput) {
  Polynomial f = (Y() - X()) * (Y() + X());
  Polynomial g = (Y() - X()) * (Y() - Polynomial(1));
  auto basis = SquarefreeBasis({f, g});
  for (std::size_t i = 0; i < basis.size(); ++i) {
    for (std::size_t j = i + 1; j < basis.size(); ++j) {
      EXPECT_TRUE(MvGcd(basis[i], basis[j]).is_constant())
          << basis[i].ToString() << " vs " << basis[j].ToString();
    }
  }
}

}  // namespace
}  // namespace ccdb
