#include "constraint/formula.h"

#include <gtest/gtest.h>

namespace ccdb {
namespace {

Rational R(std::int64_t n, std::int64_t d = 1) {
  return Rational(BigInt(n), BigInt(d));
}

Polynomial X() { return Polynomial::Var(0); }
Polynomial Y() { return Polynomial::Var(1); }

// S(x,y): 4x^2 - y - 20x + 25 <= 0 (the paper's running relation).
ConstraintRelation PaperRelationS() {
  ConstraintRelation s(2);
  GeneralizedTuple tuple;
  tuple.atoms.emplace_back(
      Polynomial(4) * X().Pow(2) - Y() - Polynomial(20) * X() + Polynomial(25),
      RelOp::kLe);
  s.AddTuple(std::move(tuple));
  return s;
}

TEST(AtomTest, OperatorsAndNegation) {
  EXPECT_EQ(NegateOp(RelOp::kLe), RelOp::kGt);
  EXPECT_EQ(NegateOp(RelOp::kEq), RelOp::kNeq);
  EXPECT_EQ(NegateOp(NegateOp(RelOp::kLt)), RelOp::kLt);
  EXPECT_TRUE(SignSatisfies(-1, RelOp::kLt));
  EXPECT_TRUE(SignSatisfies(0, RelOp::kLe));
  EXPECT_FALSE(SignSatisfies(1, RelOp::kLe));
  EXPECT_TRUE(SignSatisfies(0, RelOp::kEq));
  EXPECT_TRUE(SignSatisfies(1, RelOp::kNeq));

  Atom a(X() - Polynomial(1), RelOp::kLt);
  EXPECT_TRUE(a.SatisfiedAt({R(0)}));
  EXPECT_FALSE(a.SatisfiedAt({R(1)}));
  EXPECT_TRUE(a.Negated().SatisfiedAt({R(1)}));
}

TEST(GeneralizedTupleTest, SatisfactionAndSimplify) {
  GeneralizedTuple triangle;  // x<=y and x>=0 and y<=10 (paper's example)
  triangle.atoms.emplace_back(X() - Y(), RelOp::kLe);
  triangle.atoms.emplace_back(-X(), RelOp::kLe);
  triangle.atoms.emplace_back(Y() - Polynomial(10), RelOp::kLe);
  EXPECT_TRUE(triangle.SatisfiedAt({R(1), R(5)}));
  EXPECT_FALSE(triangle.SatisfiedAt({R(5), R(1)}));
  EXPECT_FALSE(triangle.SatisfiedAt({R(-1), R(5)}));

  GeneralizedTuple with_constants;
  with_constants.atoms.emplace_back(Polynomial(0), RelOp::kEq);  // true
  with_constants.atoms.emplace_back(X(), RelOp::kGt);
  EXPECT_TRUE(with_constants.SimplifyConstants());
  EXPECT_EQ(with_constants.atoms.size(), 1u);

  GeneralizedTuple contradictory;
  contradictory.atoms.emplace_back(Polynomial(1), RelOp::kLt);  // 1 < 0
  EXPECT_TRUE(contradictory.TriviallyFalse());
  EXPECT_FALSE(contradictory.SimplifyConstants());
}

TEST(ConstraintRelationTest, MembershipPaperExample) {
  ConstraintRelation s = PaperRelationS();
  // (2.5, 0) is on the boundary of S.
  EXPECT_TRUE(s.Contains({R(5, 2), R(0)}));
  // (2.5, 9) is inside S (p = -9 <= 0).
  EXPECT_TRUE(s.Contains({R(5, 2), R(9)}));
  // (0, 0) is outside (p = 25 > 0).
  EXPECT_FALSE(s.Contains({R(0), R(0)}));
  EXPECT_EQ(s.MaxDegree(), 2u);
  EXPECT_EQ(s.DistinctPolynomialCount(), 1u);
  EXPECT_EQ(s.MaxCoefficientBitLength(), 5u);
}

TEST(FormulaTest, ConstructionAndKinds) {
  Formula t = Formula::True();
  Formula f = Formula::False();
  EXPECT_EQ(t.kind(), Formula::Kind::kTrue);
  EXPECT_EQ(Formula::And(t, f).kind(), Formula::Kind::kFalse);  // simplified
  EXPECT_EQ(Formula::Or(t, f).kind(), Formula::Kind::kTrue);
  Formula atom = Formula::Compare(X(), RelOp::kLe, Y());
  EXPECT_EQ(atom.kind(), Formula::Kind::kAtom);
  // Canonicalization sign-normalizes the atom: x - y <= 0 becomes
  // y - x >= 0 (positive leading coefficient in the term order).
  EXPECT_EQ(atom.atom().op, RelOp::kGe);
  EXPECT_EQ(atom.atom().poly, Y() - X());
  EXPECT_EQ(atom, Formula::Compare(Y(), RelOp::kGe, X()));
  Formula ex = Formula::Exists(1, atom);
  EXPECT_EQ(ex.kind(), Formula::Kind::kExists);
  EXPECT_EQ(ex.quantified_var(), 1);
  EXPECT_FALSE(ex.is_quantifier_free());
  EXPECT_TRUE(atom.is_quantifier_free());
}

TEST(FormulaTest, FreeVars) {
  Formula atom = Formula::Compare(X(), RelOp::kLe, Y());
  std::set<int> fv = atom.FreeVars();
  EXPECT_EQ(fv, (std::set<int>{0, 1}));
  Formula ex = Formula::Exists(1, atom);
  EXPECT_EQ(ex.FreeVars(), (std::set<int>{0}));
  Formula rel = Formula::Relation("S", {0, 2});
  EXPECT_EQ(rel.FreeVars(), (std::set<int>{0, 2}));
  EXPECT_EQ(Formula::Exists(2, rel).FreeVars(), (std::set<int>{0}));
}

TEST(FormulaTest, EvaluateAtQuantifierFree) {
  // (x <= y and x >= 0) or x = 7.
  Formula f = Formula::Or(
      Formula::And(Formula::Compare(X(), RelOp::kLe, Y()),
                   Formula::Compare(X(), RelOp::kGe, Polynomial(0))),
      Formula::Compare(X(), RelOp::kEq, Polynomial(7)));
  EXPECT_TRUE(f.EvaluateAt({R(1), R(2)}));
  EXPECT_FALSE(f.EvaluateAt({R(-1), R(2)}));
  EXPECT_TRUE(f.EvaluateAt({R(7), R(-100)}));
  EXPECT_TRUE(Formula::Not(f).EvaluateAt({R(3), R(1)}));
}

TEST(FormulaTest, InstantiateRelationsPaperQuery) {
  // Q(x) = exists y (S(x, y) and y <= 0), the paper's Section 2 query.
  Formula query = Formula::Exists(
      1, Formula::And(Formula::Relation("S", {0, 1}),
                      Formula::Compare(Y(), RelOp::kLe, Polynomial(0))));
  ConstraintRelation s = PaperRelationS();
  auto lookup =
      [&s](const std::string& name) -> StatusOr<ConstraintRelation> {
    if (name == "S") return s;
    return Status::NotFound("no relation " + name);
  };
  auto instantiated = query.InstantiateRelations(lookup);
  ASSERT_TRUE(instantiated.ok());
  EXPECT_FALSE(instantiated->has_relation_symbols());
  EXPECT_EQ(instantiated->FreeVars(), (std::set<int>{0}));

  Formula unknown = Formula::Relation("T", {0});
  EXPECT_FALSE(unknown.InstantiateRelations(lookup).ok());

  Formula wrong_arity = Formula::Relation("S", {0});
  EXPECT_FALSE(wrong_arity.InstantiateRelations(lookup).ok());
}

TEST(FormulaTest, InstantiationRenamesColumns) {
  // S used as S(z, w) with z=var 3, w=var 7.
  ConstraintRelation s = PaperRelationS();
  Formula use = Formula::Relation("S", {3, 7});
  auto instantiated = use.InstantiateRelations(
      [&s](const std::string&) -> StatusOr<ConstraintRelation> { return s; });
  ASSERT_TRUE(instantiated.ok());
  // Satisfied where S holds with x->var3, y->var7.
  std::vector<Rational> point(8, R(0));
  point[3] = R(5, 2);
  point[7] = R(9);
  EXPECT_TRUE(instantiated->EvaluateAt(point));
  point[3] = R(0);
  EXPECT_FALSE(instantiated->EvaluateAt(point));
}

TEST(NnfTest, PushesNegations) {
  Formula atom1 = Formula::Compare(X(), RelOp::kLt, Polynomial(0));
  Formula atom2 = Formula::Compare(Y(), RelOp::kEq, Polynomial(1));
  Formula f = Formula::Not(Formula::And(atom1, atom2));
  Formula nnf = ToNnf(f);
  EXPECT_EQ(nnf.kind(), Formula::Kind::kOr);
  EXPECT_EQ(nnf.children()[0].atom().op, RelOp::kGe);
  EXPECT_EQ(nnf.children()[1].atom().op, RelOp::kNeq);

  Formula q = Formula::Not(Formula::Exists(0, atom1));
  Formula qnnf = ToNnf(q);
  EXPECT_EQ(qnnf.kind(), Formula::Kind::kForall);
  EXPECT_EQ(qnnf.children()[0].atom().op, RelOp::kGe);

  EXPECT_EQ(ToNnf(Formula::Not(Formula::Not(atom1))).kind(),
            Formula::Kind::kAtom);
  EXPECT_EQ(ToNnf(Formula::Not(Formula::True())).kind(),
            Formula::Kind::kFalse);
}

TEST(PrenexTest, PullsAndRenames) {
  // exists y (x<y) and exists y (y<x): bound vars must be renamed apart.
  Formula left = Formula::Exists(1, Formula::Compare(X(), RelOp::kLt, Y()));
  Formula right = Formula::Exists(1, Formula::Compare(Y(), RelOp::kLt, X()));
  Formula f = Formula::And(left, right);
  int fresh = 2;
  PrenexForm prenex = ToPrenex(f, &fresh);
  ASSERT_EQ(prenex.prefix.size(), 2u);
  EXPECT_TRUE(prenex.prefix[0].is_exists);
  EXPECT_TRUE(prenex.prefix[1].is_exists);
  EXPECT_NE(prenex.prefix[0].var, prenex.prefix[1].var);
  EXPECT_TRUE(prenex.matrix.is_quantifier_free());
  // Matrix satisfiable with suitable witnesses: x=0 and {1, -1} for the
  // two fresh variables. AND children are structurally sorted, so which
  // fresh variable belongs to which conjunct is not fixed — one of the two
  // assignments must work.
  std::vector<Rational> point(4, R(0));
  point[prenex.prefix[0].var] = R(1);
  point[prenex.prefix[1].var] = R(-1);
  bool forward = prenex.matrix.EvaluateAt(point);
  point[prenex.prefix[0].var] = R(-1);
  point[prenex.prefix[1].var] = R(1);
  bool backward = prenex.matrix.EvaluateAt(point);
  EXPECT_TRUE(forward || backward);
  EXPECT_FALSE(forward && backward);
}

TEST(PrenexTest, ForallUnderNegation) {
  // not (forall y (y > x)) == exists y (y <= x).
  Formula f = Formula::Not(
      Formula::Forall(1, Formula::Compare(Y(), RelOp::kGt, X())));
  int fresh = 2;
  PrenexForm prenex = ToPrenex(f, &fresh);
  ASSERT_EQ(prenex.prefix.size(), 1u);
  EXPECT_TRUE(prenex.prefix[0].is_exists);
  EXPECT_EQ(prenex.matrix.kind(), Formula::Kind::kAtom);
  EXPECT_EQ(prenex.matrix.atom().op, RelOp::kLe);
}

TEST(DnfTest, CrossProduct) {
  // (a or b) and c -> (a and c) or (b and c).
  Formula a = Formula::Compare(X(), RelOp::kLt, Polynomial(0));
  Formula b = Formula::Compare(X(), RelOp::kGt, Polynomial(5));
  Formula c = Formula::Compare(Y(), RelOp::kEq, Polynomial(1));
  auto tuples = ToDnf(Formula::And(Formula::Or(a, b), c));
  ASSERT_EQ(tuples.size(), 2u);
  EXPECT_EQ(tuples[0].atoms.size(), 2u);
  EXPECT_EQ(tuples[1].atoms.size(), 2u);
}

TEST(DnfTest, SimplifiesTrivial) {
  Formula contradiction =
      Formula::Compare(Polynomial(1), RelOp::kLt, Polynomial(0));
  EXPECT_TRUE(ToDnf(contradiction).empty());
  auto tuples = ToDnf(Formula::True());
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_TRUE(tuples[0].atoms.empty());
  EXPECT_TRUE(ToDnf(Formula::False()).empty());
}

TEST(FormulaTest, ToStringRoundTripReadable) {
  Formula query = Formula::Exists(
      1, Formula::And(Formula::Relation("S", {0, 1}),
                      Formula::Compare(Y(), RelOp::kLe, Polynomial(0))));
  std::string rendered = query.ToString({"x", "y"});
  EXPECT_NE(rendered.find("exists y"), std::string::npos);
  EXPECT_NE(rendered.find("S(x, y)"), std::string::npos);
}

}  // namespace
}  // namespace ccdb
