#include "storage/catalog.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "base/failpoint.h"

namespace ccdb {
namespace {

Rational R(std::int64_t n, std::int64_t d = 1) {
  return Rational(BigInt(n), BigInt(d));
}

TEST(TupleBoxTest, DerivedFromLinearAtoms) {
  // 0 <= x <= 5, y = 3, plus a nonlinear atom that contributes nothing.
  GeneralizedTuple tuple;
  tuple.atoms.emplace_back(-Polynomial::Var(0), RelOp::kLe);
  tuple.atoms.emplace_back(Polynomial::Var(0) - Polynomial(5), RelOp::kLe);
  tuple.atoms.emplace_back(Polynomial::Var(1) - Polynomial(3), RelOp::kEq);
  tuple.atoms.emplace_back(
      Polynomial::Var(0) * Polynomial::Var(1) - Polynomial(1), RelOp::kLe);
  TupleBox box = TupleBox::Of(tuple, 2);
  EXPECT_TRUE(box.MayContain({R(2), R(3)}));
  EXPECT_FALSE(box.MayContain({R(6), R(3)}));
  EXPECT_FALSE(box.MayContain({R(-1), R(3)}));
  EXPECT_FALSE(box.MayContain({R(2), R(4)}));
  EXPECT_FALSE(box.MayContain({R(2), R(2)}));
}

TEST(TupleBoxTest, NegatedCoefficientFlips) {
  // -2x + 6 <= 0  ->  x >= 3.
  GeneralizedTuple tuple;
  tuple.atoms.emplace_back(Polynomial(-2) * Polynomial::Var(0) + Polynomial(6),
                           RelOp::kLe);
  TupleBox box = TupleBox::Of(tuple, 1);
  EXPECT_TRUE(box.MayContain({R(3)}));
  EXPECT_TRUE(box.MayContain({R(100)}));
  EXPECT_FALSE(box.MayContain({R(2)}));
}

TEST(CatalogTest, AddGetDrop) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelationFromText(
                        "S(x, y) := 4*x^2 - y - 20*x + 25 <= 0")
                  .ok());
  EXPECT_TRUE(catalog.HasRelation("S"));
  EXPECT_FALSE(catalog.AddRelationFromText("S(x) := x = 0").ok());
  auto s = catalog.GetRelation("S");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->arity(), 2);
  EXPECT_TRUE(catalog.DropRelation("S").ok());
  EXPECT_FALSE(catalog.HasRelation("S"));
  EXPECT_FALSE(catalog.DropRelation("S").ok());
}

TEST(CatalogTest, ContainsUsesIndex) {
  Catalog catalog;
  ASSERT_TRUE(
      catalog.AddRelationFromText("Box(x, y) := 0 <= x and x <= 1 and "
                                  "0 <= y and y <= 1")
          .ok());
  auto in = catalog.Contains("Box", {R(1, 2), R(1, 2)});
  ASSERT_TRUE(in.ok());
  EXPECT_TRUE(*in);
  auto out = catalog.Contains("Box", {R(2), R(2)});
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(*out);
  EXPECT_FALSE(catalog.Contains("Nope", {R(0)}).ok());
  EXPECT_FALSE(catalog.Contains("Box", {R(0)}).ok());  // arity mismatch
}

TEST(CatalogTest, SerializeRoundTrip) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelationFromText(
                        "S(x, y) := 4*x^2 - y - 20*x + 25 <= 0")
                  .ok());
  ASSERT_TRUE(catalog.AddRelationFromText(
                        "Seg(t) := (0 <= t and t <= 10) or t = 20")
                  .ok());
  std::string text = catalog.Serialize();
  auto reloaded = Catalog::Deserialize(text);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString() << "\n" << text;
  EXPECT_EQ(reloaded->RelationNames(), catalog.RelationNames());
  // Semantics preserved on sample points.
  auto contains = reloaded->Contains("S", {R(5, 2), R(0)});
  ASSERT_TRUE(contains.ok());
  EXPECT_TRUE(*contains);
  auto seg20 = reloaded->Contains("Seg", {R(20)});
  ASSERT_TRUE(seg20.ok());
  EXPECT_TRUE(*seg20);
  auto seg15 = reloaded->Contains("Seg", {R(15)});
  ASSERT_TRUE(seg15.ok());
  EXPECT_FALSE(*seg15);
}

TEST(CatalogTest, RationalCoefficientsSurviveRoundTrip) {
  Catalog catalog;
  ASSERT_TRUE(
      catalog.AddRelationFromText("H(x) := 2*x - 1 <= 0 and -2*x - 1 <= 0")
          .ok());
  auto reloaded = Catalog::Deserialize(catalog.Serialize());
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  auto in = reloaded->Contains("H", {R(1, 4)});
  ASSERT_TRUE(in.ok());
  EXPECT_TRUE(*in);
  auto out = reloaded->Contains("H", {R(3, 4)});
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(*out);
}

TEST(CatalogTest, FileRoundTrip) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelationFromText("P(x) := x^2 - 2 <= 0").ok());
  std::string path = "/tmp/ccdb_catalog_test.txt";
  ASSERT_TRUE(catalog.SaveToFile(path).ok());
  auto loaded = Catalog::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->HasRelation("P"));
  std::remove(path.c_str());
  EXPECT_FALSE(Catalog::LoadFromFile("/tmp/ccdb_does_not_exist.txt").ok());
}

TEST(CatalogTest, FailedSaveLeavesPreviousFileIntact) {
  // SaveToFile is atomic (tmp + fsync + rename): a write failure mid-save
  // must leave the previous file byte-identical and no .tmp behind.
  Catalog first;
  ASSERT_TRUE(first.AddRelationFromText("P(x) := x^2 - 2 <= 0").ok());
  std::string path = testing::TempDir() + "/ccdb_catalog_atomic_save.txt";
  std::string tmp_path = path + ".tmp";
  std::remove(path.c_str());
  std::remove(tmp_path.c_str());
  ASSERT_TRUE(first.SaveToFile(path).ok());
  const std::string before = first.Serialize();

  Catalog second;
  ASSERT_TRUE(second.AddRelationFromText("Q(x) := x <= 9").ok());
  FailpointRegistry::Global().ClearAll();
  ASSERT_TRUE(
      FailpointRegistry::Global().Configure("save.write=short-write@1").ok());
  Status st = second.SaveToFile(path);
  FailpointRegistry::Global().ClearAll();
  EXPECT_FALSE(st.ok());

  auto reloaded = Catalog::LoadFromFile(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->Serialize(), before);
  std::ifstream tmp_probe(tmp_path);
  EXPECT_FALSE(tmp_probe.good()) << "failed save left " << tmp_path;
  std::remove(path.c_str());
}

TEST(CatalogTest, DeserializeErrorsCarryLineNumbers) {
  auto bad = Catalog::Deserialize("# header\nR(x) := x <= 1\nbroken line\n");
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 3"), std::string::npos);
}

}  // namespace
}  // namespace ccdb
