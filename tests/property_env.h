#ifndef CCDB_TESTS_PROPERTY_ENV_H_
#define CCDB_TESTS_PROPERTY_ENV_H_

#include <cstdlib>

namespace ccdb_test {

/// Multiplier for randomized property/differential suite iteration counts,
/// read from CCDB_PROPERTY_ITERS (default 1). CI's sanitizer legs widen it
/// so the seeded sweeps cover more of the operand space under
/// ASan/UBSan/TSan without slowing the default developer run.
inline int PropertyIterScale() {
  static const int scale = [] {
    const char* env = std::getenv("CCDB_PROPERTY_ITERS");
    if (env == nullptr) return 1;
    int value = std::atoi(env);
    return value >= 1 ? value : 1;
  }();
  return scale;
}

}  // namespace ccdb_test

#endif  // CCDB_TESTS_PROPERTY_ENV_H_
