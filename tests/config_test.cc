// EngineConfig (base/config.h): the single place CCDB_* knobs are
// resolved. Covers the env parser's accepted spellings, the one-warning-
// per-bad-knob diagnostic contract (each warning names the variable and
// the fallback actually used — startup never crashes on a bad
// environment), the With* value-semantics builders, and the fingerprint
// identity logged in schema-3 query-log records.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "base/config.h"

namespace ccdb {
namespace {

// Sets/unsets environment variables for one test and restores the prior
// values on destruction, so config tests don't leak knobs into each other
// (or into EngineConfig::Process(), which other tests read — note Process
// is resolved on FIRST use, so these tests only ever exercise FromEnv).
class ScopedEnv {
 public:
  void Set(const std::string& name, const std::string& value) {
    Save(name);
    ::setenv(name.c_str(), value.c_str(), /*overwrite=*/1);
  }
  void Unset(const std::string& name) {
    Save(name);
    ::unsetenv(name.c_str());
  }
  ~ScopedEnv() {
    for (const auto& [name, prior] : saved_) {
      if (prior.second) {
        ::setenv(name.c_str(), prior.first.c_str(), 1);
      } else {
        ::unsetenv(name.c_str());
      }
    }
  }

 private:
  void Save(const std::string& name) {
    if (saved_.count(name)) return;
    const char* value = ::getenv(name.c_str());
    saved_.emplace(name,
                   std::make_pair(value == nullptr ? "" : value,
                                  value != nullptr));
  }
  std::map<std::string, std::pair<std::string, bool>> saved_;
};

const char* kAllKnobs[] = {
    "CCDB_THREADS",     "CCDB_PLAN",
    "CCDB_SEMINAIVE",   "CCDB_INCREMENTAL",
    "CCDB_QE_CACHE",    "CCDB_QE_CACHE_CAPACITY",
    "CCDB_FILTER",      "CCDB_LOG_LEVEL",
    "CCDB_TRACE",       "CCDB_QUERY_LOG",
    "CCDB_WAL_FSYNC",   "CCDB_WAL_CHECKPOINT_BYTES",
};

TEST(ConfigTest, CleanEnvironmentYieldsDefaultsWithoutWarnings) {
  ScopedEnv env;
  for (const char* knob : kAllKnobs) env.Unset(knob);

  std::vector<std::string> warnings;
  EngineConfig config = EngineConfig::FromEnv(&warnings);
  EXPECT_TRUE(warnings.empty());
  EXPECT_EQ(config.threads, 1);
  EXPECT_TRUE(config.plan);
  EXPECT_TRUE(config.seminaive);
  EXPECT_TRUE(config.incremental);
  EXPECT_TRUE(config.qe_cache);
  EXPECT_EQ(config.qe_cache_capacity, 4096u);
  EXPECT_TRUE(config.filter);
  EXPECT_EQ(config.log_level, "WARN");
  EXPECT_FALSE(config.trace);
  EXPECT_EQ(config.query_log_path, "");
  EXPECT_EQ(config.wal_fsync, "always");
  EXPECT_EQ(config.wal_checkpoint_bytes, 1u << 20);
}

TEST(ConfigTest, ValidKnobsAreParsed) {
  ScopedEnv env;
  for (const char* knob : kAllKnobs) env.Unset(knob);
  env.Set("CCDB_THREADS", "8");
  env.Set("CCDB_PLAN", "off");       // booleans: 0|1|true|false|on|off
  env.Set("CCDB_SEMINAIVE", "FALSE");  // case-insensitive
  env.Set("CCDB_INCREMENTAL", "0");
  env.Set("CCDB_QE_CACHE", "true");
  env.Set("CCDB_QE_CACHE_CAPACITY", "128");
  env.Set("CCDB_LOG_LEVEL", "ERROR");
  env.Set("CCDB_TRACE", "1");
  env.Set("CCDB_QUERY_LOG", "/tmp/q.jsonl");
  env.Set("CCDB_WAL_FSYNC", "batch");
  env.Set("CCDB_WAL_CHECKPOINT_BYTES", "65536");

  std::vector<std::string> warnings;
  EngineConfig config = EngineConfig::FromEnv(&warnings);
  EXPECT_TRUE(warnings.empty()) << warnings.front();
  EXPECT_EQ(config.threads, 8);
  EXPECT_FALSE(config.plan);
  EXPECT_FALSE(config.seminaive);
  EXPECT_FALSE(config.incremental);
  EXPECT_TRUE(config.qe_cache);
  EXPECT_EQ(config.qe_cache_capacity, 128u);
  EXPECT_EQ(config.log_level, "ERROR");
  EXPECT_TRUE(config.trace);
  EXPECT_EQ(config.query_log_path, "/tmp/q.jsonl");
  EXPECT_EQ(config.wal_fsync, "batch");
  EXPECT_EQ(config.wal_checkpoint_bytes, 65536u);
}

TEST(ConfigTest, EachBadKnobWarnsOnceNamingVariableAndFallback) {
  ScopedEnv env;
  for (const char* knob : kAllKnobs) env.Unset(knob);
  env.Set("CCDB_THREADS", "zero");       // not an integer
  env.Set("CCDB_PLAN", "fales");         // the typo that motivated ParseBool
  env.Set("CCDB_QE_CACHE_CAPACITY", "-4");  // negative
  env.Set("CCDB_LOG_LEVEL", "verbose");  // unknown level
  env.Set("CCDB_WAL_FSYNC", "sometimes");  // unknown policy

  std::vector<std::string> warnings;
  EngineConfig config = EngineConfig::FromEnv(&warnings);

  // One warning per bad knob — no more (no repeats), no fewer (none
  // silently swallowed).
  ASSERT_EQ(warnings.size(), 5u);
  auto warning_for = [&](const std::string& name) -> std::string {
    for (const std::string& w : warnings) {
      if (w.find(name) == 0) return w;
    }
    ADD_FAILURE() << "no warning names " << name;
    return "";
  };
  // Each names the rejected value and the fallback actually used.
  EXPECT_NE(warning_for("CCDB_THREADS").find("\"zero\""), std::string::npos);
  EXPECT_NE(warning_for("CCDB_THREADS").find("using 1"), std::string::npos);
  EXPECT_NE(warning_for("CCDB_PLAN").find("\"fales\""), std::string::npos);
  EXPECT_NE(warning_for("CCDB_PLAN").find("using 1"), std::string::npos);
  EXPECT_NE(warning_for("CCDB_QE_CACHE_CAPACITY").find("\"-4\""),
            std::string::npos);
  EXPECT_NE(warning_for("CCDB_QE_CACHE_CAPACITY").find("using 4096"),
            std::string::npos);
  EXPECT_NE(warning_for("CCDB_LOG_LEVEL").find("\"verbose\""),
            std::string::npos);
  EXPECT_NE(warning_for("CCDB_LOG_LEVEL").find("using WARN"),
            std::string::npos);
  EXPECT_NE(warning_for("CCDB_WAL_FSYNC").find("\"sometimes\""),
            std::string::npos);
  EXPECT_NE(warning_for("CCDB_WAL_FSYNC").find("using always"),
            std::string::npos);

  // And every bad knob actually fell back — never crashed, never guessed.
  EXPECT_EQ(config.threads, 1);
  EXPECT_TRUE(config.plan);
  EXPECT_EQ(config.qe_cache_capacity, 4096u);
  EXPECT_EQ(config.log_level, "WARN");
  EXPECT_EQ(config.wal_fsync, "always");
}

TEST(ConfigTest, ThreadCountBoundsAreEnforced) {
  ScopedEnv env;
  for (const char* knob : kAllKnobs) env.Unset(knob);

  env.Set("CCDB_THREADS", "0");
  std::vector<std::string> warnings;
  EXPECT_EQ(EngineConfig::FromEnv(&warnings).threads, 1);
  EXPECT_EQ(warnings.size(), 1u);

  env.Set("CCDB_THREADS", "5000");  // above the 4096 sanity cap
  warnings.clear();
  EXPECT_EQ(EngineConfig::FromEnv(&warnings).threads, 1);
  EXPECT_EQ(warnings.size(), 1u);

  env.Set("CCDB_THREADS", "4096");
  warnings.clear();
  EXPECT_EQ(EngineConfig::FromEnv(&warnings).threads, 4096);
  EXPECT_TRUE(warnings.empty());
}

TEST(ConfigTest, WithBuildersAreValueSemantics) {
  EngineConfig base;
  EngineConfig changed = base.WithThreads(4)
                             .WithPlan(false)
                             .WithSeminaive(false)
                             .WithIncremental(false)
                             .WithQeCache(false)
                             .WithFilter(false);
  // The original is untouched (builders copy).
  EXPECT_EQ(base.threads, 1);
  EXPECT_TRUE(base.plan);
  EXPECT_EQ(changed.threads, 4);
  EXPECT_FALSE(changed.plan);
  EXPECT_FALSE(changed.seminaive);
  EXPECT_FALSE(changed.incremental);
  EXPECT_FALSE(changed.qe_cache);
  EXPECT_FALSE(changed.filter);
  // WithThreads clamps below 1 (a session pool always has one runner).
  EXPECT_EQ(base.WithThreads(0).threads, 1);
  EXPECT_EQ(base.WithThreads(-3).threads, 1);
}

TEST(ConfigTest, FingerprintIsStableAndConfigSensitive) {
  EngineConfig a;
  EngineConfig b;
  // 16 lowercase hex digits, equal for equal configs across calls.
  const std::string fp = a.Fingerprint();
  ASSERT_EQ(fp.size(), 16u);
  for (char c : fp) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
  }
  EXPECT_EQ(fp, a.Fingerprint());
  EXPECT_EQ(fp, b.Fingerprint());

  // Any field change moves the fingerprint (it hashes Canonical(), which
  // renders every field).
  EXPECT_NE(fp, a.WithThreads(2).Fingerprint());
  EXPECT_NE(fp, a.WithPlan(false).Fingerprint());
  EXPECT_NE(fp, a.WithSeminaive(false).Fingerprint());
  EXPECT_NE(fp, a.WithIncremental(false).Fingerprint());
  EXPECT_NE(fp, a.WithQeCache(false).Fingerprint());
  EXPECT_NE(fp, a.WithFilter(false).Fingerprint());
  // Distinct overrides, distinct fingerprints.
  EXPECT_NE(a.WithThreads(2).Fingerprint(), a.WithThreads(3).Fingerprint());

  // The canonical rendering is the fingerprint's preimage and names every
  // knob.
  const std::string canonical = a.Canonical();
  for (const char* key :
       {"threads=", "plan=", "seminaive=", "incremental=", "qe_cache=",
        "qe_cache_capacity=", "filter=", "log_level=", "trace=",
        "query_log=", "wal_fsync=", "wal_checkpoint_bytes="}) {
    EXPECT_NE(canonical.find(key), std::string::npos) << key;
  }
}

TEST(ConfigTest, ToStringNamesEveryKnobAndTheFingerprint) {
  EngineConfig config;
  const std::string table = config.ToString();
  EXPECT_NE(table.find(config.Fingerprint()), std::string::npos);
  for (const char* key :
       {"threads", "plan", "seminaive", "incremental", "qe_cache",
        "qe_cache_capacity", "filter", "log_level", "trace", "query_log",
        "wal_fsync", "wal_checkpoint_bytes"}) {
    EXPECT_NE(table.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace ccdb
