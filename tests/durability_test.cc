// Durability & crash recovery (DESIGN.md §13).
//
// Two layers of coverage:
//
//  1. Unit tests of the WAL wire format, torn-tail vs mid-log corruption
//     classification, checkpoint atomicity, and the short-write error
//     path — all in-process.
//
//  2. A randomized crash-recovery matrix: this binary re-execs itself
//     (CCDB_CRASH_CHILD) as a child that applies a seeded mutation
//     schedule to a durable database with a crash/torn-write failpoint
//     armed at one durability boundary, acknowledging each applied
//     mutation to a side file. The parent then recovers the directory
//     in-process and asserts the crash-consistency contract:
//
//       - recovery succeeds (torn tails are truncated, never fatal);
//       - the recovered catalog is EXACTLY the acknowledged prefix of the
//         schedule, or that prefix plus the single in-flight mutation
//         (logged but not yet acknowledged — both are legal outcomes of a
//         crash between WAL append and acknowledgment);
//       - query answers against the recovered catalog are byte-identical
//         to a never-crashed reference database holding the same state;
//       - the recovered catalog version is strictly greater than every
//         version the child observed (monotonicity across crashes — memo
//         caches can never alias a pre-crash state).
//
//     ~24 schedules x 9 crash sites = 216 combos. Scratch directories
//     live under ./ccdb_durability_scratch and are kept on failure for
//     post-mortem (CI uploads them as an artifact).

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/failpoint.h"
#include "engine/database.h"
#include "storage/catalog.h"
#include "storage/wal.h"

namespace ccdb {
namespace {

// ---------------------------------------------------------------------------
// Seeded mutation schedules, shared by the child driver and the parent's
// reference evaluation. All relations are arity-2 and linear so every
// query in the byte-identity check is a cheap Fourier–Motzkin round.

struct MutationOp {
  enum Kind { kDefine, kDrop } kind;
  std::string name;
  std::string definition;  // kDefine only
};

std::vector<MutationOp> GenerateSchedule(unsigned seed) {
  std::mt19937 rng(seed);
  std::vector<MutationOp> ops;
  std::vector<std::string> live;
  const int length = 6 + static_cast<int>(rng() % 5);  // 6..10 ops
  int next_id = 0;
  for (int i = 0; i < length; ++i) {
    const bool drop = !live.empty() && rng() % 10 < 3;
    if (drop) {
      std::size_t victim = rng() % live.size();
      ops.push_back({MutationOp::kDrop, live[victim], ""});
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    } else {
      std::string name = "R" + std::to_string(next_id++);
      int a = 1 + static_cast<int>(rng() % 5);
      int b = static_cast<int>(rng() % 7) - 3;
      int c = static_cast<int>(rng() % 9) - 4;
      auto term = [](int coefficient, const std::string& rendered) {
        return std::string(coefficient < 0 ? " - " : " + ") +
               std::to_string(coefficient < 0 ? -coefficient : coefficient) +
               rendered;
      };
      std::string definition = name + "(x, y) := " + std::to_string(a) +
                               "*x" + term(b, "*y") + term(c, "") +
                               " <= 0 and x + 10 >= 0 and y + 10 >= 0";
      ops.push_back({MutationOp::kDefine, name, definition});
      live.push_back(name);
    }
  }
  return ops;
}

Status ApplyOp(ConstraintDatabase& db, const MutationOp& op) {
  if (op.kind == MutationOp::kDefine) return db.Define(op.definition);
  return db.Drop(op.name);
}

// Canonical query answers for every relation in the catalog: existential
// projection plus the serialized constraint form. Byte-identical across a
// recovered and a never-crashed database holding the same state.
std::string QueryFingerprint(const ConstraintDatabase& db) {
  std::ostringstream out;
  for (const std::string& name : db.RelationNames()) {
    out << db.catalog().Serialize();
    auto projected = db.Query("exists y (" + name + "(x, y) and x <= 2)");
    if (!projected.ok()) {
      out << name << ": error " << projected.status().ToString() << "\n";
      continue;
    }
    out << name << ": "
        << projected->relation.ToString(projected->column_names) << "\n";
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// Child driver: applies a schedule to a durable database, acknowledging
// progress to <dir>/acks.txt (flushed per line, so a crash loses at most
// the in-flight op). Runs before gtest init — see main() below.

int RunCrashChild() {
  const char* dir = std::getenv("CCDB_CRASH_DIR");
  const char* seed_env = std::getenv("CCDB_CRASH_SCHEDULE");
  if (dir == nullptr || seed_env == nullptr) {
    std::fprintf(stderr, "child: CCDB_CRASH_DIR / CCDB_CRASH_SCHEDULE unset\n");
    return 3;
  }
  const unsigned seed = static_cast<unsigned>(std::strtoul(seed_env, nullptr, 10));
  auto opened = ConstraintDatabase::OpenDurable(dir);
  if (!opened.ok()) {
    std::fprintf(stderr, "child: OpenDurable failed: %s\n",
                 opened.status().ToString().c_str());
    return 3;
  }
  ConstraintDatabase db = std::move(opened).value();
  std::ofstream acks(std::string(dir) + "/acks.txt", std::ios::app);
  const std::vector<MutationOp> schedule = GenerateSchedule(seed);
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    acks << "try " << i << "\n" << std::flush;
    Status applied = ApplyOp(db, schedule[i]);
    if (applied.ok()) {
      acks << "ok " << i << " " << db.catalog().version() << "\n"
           << std::flush;
    } else {
      // Short-write injection: the op failed cleanly, the process keeps
      // going, and the failed op must NOT appear in the recovered state.
      acks << "fail " << i << "\n" << std::flush;
    }
  }
  return 0;
  // ~ConstraintDatabase runs the close-time checkpoint here; crash sites
  // armed at ckpt.* can fire during it, after every op was acked.
}

// What the child acknowledged before dying.
struct AckLog {
  std::vector<std::size_t> acked;   // ops applied, in order
  std::vector<std::size_t> failed;  // ops rejected cleanly (short writes)
  long last_tried = -1;
  std::uint64_t max_version = 0;
};

AckLog ReadAckLog(const std::string& dir) {
  AckLog log;
  std::ifstream in(dir + "/acks.txt");
  std::string word;
  while (in >> word) {
    if (word == "try") {
      in >> log.last_tried;
    } else if (word == "ok") {
      std::size_t index = 0;
      std::uint64_t version = 0;
      in >> index >> version;
      log.acked.push_back(index);
      log.max_version = std::max(log.max_version, version);
    } else if (word == "fail") {
      std::size_t index = 0;
      in >> index;
      log.failed.push_back(index);
    }
  }
  return log;
}

// ---------------------------------------------------------------------------
// Parent-side harness.

constexpr char kScratchRoot[] = "ccdb_durability_scratch";

std::string Shell(const std::string& command) { return command; }

void RemoveTree(const std::string& path) {
  std::system(Shell("rm -rf '" + path + "'").c_str());
}

std::string ReferenceSerialization(const std::vector<MutationOp>& schedule,
                                   const std::vector<std::size_t>& applied) {
  Catalog reference;
  for (std::size_t index : applied) {
    Status st = index < schedule.size()
                    ? (schedule[index].kind == MutationOp::kDefine
                           ? reference.AddRelationFromText(
                                 schedule[index].definition)
                           : reference.DropRelation(schedule[index].name))
    : Status::InvalidArgument("index out of range");
    if (!st.ok()) return "reference apply failed: " + st.ToString();
  }
  return reference.Serialize();
}

ConstraintDatabase ReferenceDatabase(const std::vector<MutationOp>& schedule,
                                     const std::vector<std::size_t>& applied) {
  ConstraintDatabase db;
  for (std::size_t index : applied) {
    Status st = ApplyOp(db, schedule[index]);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  return db;
}

struct CrashSite {
  const char* spec;  // site=kind (fire_at appended per combo)
  bool can_crash;    // crash/torn kinds exit 42; short-write exits 0
};

constexpr CrashSite kCrashSites[] = {
    {"wal.append.pre=crash", true},
    {"wal.append.write=torn-write", true},
    {"wal.append.write=crash", true},
    {"wal.append.post=crash", true},
    {"wal.fsync.pre=crash", true},
    {"wal.append.write=short-write", false},
    {"ckpt.write=torn-write", true},
    {"ckpt.rename.pre=crash", true},
    {"ckpt.rename.post=crash", true},
};

// Runs one (schedule, crash site) combo end to end; returns a non-empty
// failure description on contract violation. `*crashed` reports whether
// the injected fault actually killed the child (exit 42).
// Absolute path of this test binary, for re-exec'ing the crash child.
// /proc/self/exe must be resolved here in the parent: handing the literal
// path to std::system would make the forked shell resolve it to sh itself.
std::string SelfExePath() {
  char buf[4096];
  ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  return std::string(buf, static_cast<std::size_t>(n));
}

std::string RunCombo(unsigned seed, const CrashSite& site,
                     unsigned fire_at, const std::string& scratch,
                     bool* crashed) {
  RemoveTree(scratch);
  ::mkdir(kScratchRoot, 0755);
  ::mkdir(scratch.c_str(), 0755);
  const std::string dir = scratch + "/db";

  // Tiny checkpoint threshold: every mutation triggers a rotation, so the
  // ckpt.* sites fire mid-schedule, not only at close.
  std::ostringstream command;
  command << "CCDB_CRASH_CHILD=1"
          << " CCDB_CRASH_DIR='" << dir << "'"
          << " CCDB_CRASH_SCHEDULE=" << seed
          << " CCDB_FAILPOINTS='" << site.spec << "@" << fire_at << "'"
          << " CCDB_WAL_FSYNC=always"
          << " CCDB_WAL_CHECKPOINT_BYTES=64"
          << " '" << SelfExePath() << "' > '" << scratch
          << "/child.log' 2>&1";
  int raw = std::system(command.str().c_str());
  if (raw == -1 || !WIFEXITED(raw)) {
    return "child did not exit normally (raw status " + std::to_string(raw) +
           ")";
  }
  const int exit_code = WEXITSTATUS(raw);
  if (exit_code != 0 && exit_code != FailpointRegistry::kCrashExitCode) {
    return "child exited " + std::to_string(exit_code) +
           " (want 0 or the injected-crash code " +
           std::to_string(FailpointRegistry::kCrashExitCode) + ")";
  }
  // exit 0 with a crash kind armed means the failpoint never fired
  // (fire_at beyond the site's hits for this schedule) — still a valid
  // recovery case, just not a crash one; the caller counts real crashes.
  *crashed = exit_code == FailpointRegistry::kCrashExitCode;

  // Recover in-process, with no failpoints armed.
  DurabilityOptions options;
  options.fsync = WalFsyncPolicy::kAlways;
  auto recovered_or = ConstraintDatabase::OpenDurable(dir, {}, options);
  if (!recovered_or.ok()) {
    return "recovery failed: " + recovered_or.status().ToString();
  }
  ConstraintDatabase recovered = std::move(recovered_or).value();

  const std::vector<MutationOp> schedule = GenerateSchedule(seed);
  const AckLog acks = ReadAckLog(dir);

  // Contract 1: the recovered catalog is the acked mutation sequence, or
  // that sequence plus the in-flight op (WAL append may have landed just
  // before the crash beat the acknowledgment).
  const std::string recovered_text = recovered.catalog().Serialize();
  const std::string acked_text = ReferenceSerialization(schedule, acks.acked);
  std::vector<std::size_t> with_inflight = acks.acked;
  bool inflight_possible = false;
  if (acks.last_tried >= 0) {
    const auto tried = static_cast<std::size_t>(acks.last_tried);
    const bool resolved =
        (!acks.acked.empty() && acks.acked.back() == tried) ||
        (!acks.failed.empty() && acks.failed.back() == tried);
    if (!resolved) {
      with_inflight.push_back(tried);
      inflight_possible = true;
    }
  }
  const std::string inflight_text =
      inflight_possible ? ReferenceSerialization(schedule, with_inflight)
                        : acked_text;
  std::vector<std::size_t> matched;
  if (recovered_text == acked_text) {
    matched = acks.acked;
  } else if (inflight_possible && recovered_text == inflight_text) {
    matched = with_inflight;
  } else {
    return "recovered state is not a prefix of the applied schedule\n"
           "--- recovered ---\n" + recovered_text +
           "--- acked prefix ---\n" + acked_text +
           (inflight_possible
                ? "--- acked prefix + in-flight ---\n" + inflight_text
                : std::string());
  }

  // Contract 2: byte-identical query answers vs a never-crashed reference.
  ConstraintDatabase reference = ReferenceDatabase(schedule, matched);
  const std::string recovered_answers = QueryFingerprint(recovered);
  const std::string reference_answers = QueryFingerprint(reference);
  if (recovered_answers != reference_answers) {
    return "query answers diverge after recovery\n--- recovered ---\n" +
           recovered_answers + "--- reference ---\n" + reference_answers;
  }

  // Contract 3: version monotonicity across the crash.
  if (acks.max_version != 0 &&
      recovered.catalog().version() <= acks.max_version) {
    return "recovered catalog version " +
           std::to_string(recovered.catalog().version()) +
           " is not past the pre-crash maximum " +
           std::to_string(acks.max_version);
  }
  return "";
}

TEST(CrashRecoveryMatrix, RecoversAPrefixAtEveryCrashSite) {
  // 24 schedules x 9 sites = 216 combos; fire_at varies with the seed so
  // crashes land at different depths of each schedule. CI can widen the
  // sweep via CCDB_CRASH_SCHEDULES (see scripts/run_crash_matrix.sh).
  unsigned schedules = 24;
  if (const char* env = std::getenv("CCDB_CRASH_SCHEDULES")) {
    unsigned parsed = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
    if (parsed > 0) schedules = parsed;
  }
  int combos = 0;
  int crashes = 0;
  for (unsigned seed = 0; seed < schedules; ++seed) {
    for (std::size_t s = 0; s < sizeof(kCrashSites) / sizeof(kCrashSites[0]);
         ++s) {
      const unsigned fire_at = 1 + (seed + static_cast<unsigned>(s)) % 6;
      const std::string scratch = std::string(kScratchRoot) + "/combo_" +
                                  std::to_string(seed) + "_" +
                                  std::to_string(s);
      bool crashed = false;
      std::string failure =
          RunCombo(seed, kCrashSites[s], fire_at, scratch, &crashed);
      ASSERT_EQ(failure, "")
          << "combo seed=" << seed << " site=" << kCrashSites[s].spec << "@"
          << fire_at << " scratch kept at " << scratch << "\n"
          << failure;
      RemoveTree(scratch);  // keep scratch only on failure
      ++combos;
      if (crashed) ++crashes;
    }
  }
  EXPECT_EQ(combos, static_cast<int>(schedules) * 9);
  if (schedules >= 24) EXPECT_GE(combos, 200);
  // Vacuity guard: a harness whose failpoints never fire proves nothing.
  // Most crash-kind combos must actually have killed the child mid-run.
  EXPECT_GE(crashes, combos / 2) << "too few injected crashes fired";
}

// ---------------------------------------------------------------------------
// WAL wire-format unit tests.

class DurabilityUnitTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Global().ClearAll(); }
  void TearDown() override { FailpointRegistry::Global().ClearAll(); }

  std::string TempPath(const std::string& leaf) {
    return ::testing::TempDir() + "/ccdb_wal_" + leaf;
  }
};

TEST_F(DurabilityUnitTest, Crc32MatchesKnownVector) {
  // The IEEE check value: crc32("123456789") = 0xCBF43926.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST_F(DurabilityUnitTest, FsyncPolicyParses) {
  EXPECT_EQ(ParseWalFsyncPolicy("always").value(), WalFsyncPolicy::kAlways);
  EXPECT_EQ(ParseWalFsyncPolicy("batch").value(), WalFsyncPolicy::kBatch);
  EXPECT_EQ(ParseWalFsyncPolicy("off").value(), WalFsyncPolicy::kOff);
  EXPECT_EQ(ParseWalFsyncPolicy("sometimes").status().code(),
            StatusCode::kInvalidArgument);
}

std::string WalFileWith(const std::vector<WalRecord>& records) {
  std::string contents = "CCDBWAL\x01";
  for (const WalRecord& record : records) {
    contents += EncodeWalRecord(record);
  }
  return contents;
}

void WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
}

TEST_F(DurabilityUnitTest, RecordsRoundTripThroughTheFraming) {
  const std::string path = TempPath("roundtrip.log");
  WalRecord a{WalRecord::Op::kDefine, 5, "R(x, y) := x <= 0"};
  WalRecord b{WalRecord::Op::kDrop, 9, "R"};
  WriteFile(path, WalFileWith({a, b}));
  auto replay = ReadWal(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ASSERT_EQ(replay->records.size(), 2u);
  EXPECT_FALSE(replay->torn_tail);
  EXPECT_EQ(replay->records[0].op, WalRecord::Op::kDefine);
  EXPECT_EQ(replay->records[0].stamp, 5u);
  EXPECT_EQ(replay->records[0].payload, "R(x, y) := x <= 0");
  EXPECT_EQ(replay->records[1].op, WalRecord::Op::kDrop);
  EXPECT_EQ(replay->records[1].payload, "R");
  EXPECT_EQ(replay->max_stamp, 9u);
  std::remove(path.c_str());
}

TEST_F(DurabilityUnitTest, TornTailIsTruncatedNotFatal) {
  const std::string path = TempPath("torn.log");
  WalRecord a{WalRecord::Op::kDefine, 1, "R0(x, y) := x <= 0"};
  WalRecord b{WalRecord::Op::kDefine, 2, "R1(x, y) := y <= 0"};
  std::string intact = WalFileWith({a});
  std::string torn = WalFileWith({a, b});
  // Chop the second record mid-payload: a crash mid-append.
  torn.resize(intact.size() + 7);
  WriteFile(path, torn);
  auto replay = ReadWal(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_TRUE(replay->torn_tail);
  EXPECT_EQ(replay->valid_bytes, intact.size());
  ASSERT_EQ(replay->records.size(), 1u);
  EXPECT_EQ(replay->records[0].payload, "R0(x, y) := x <= 0");
  std::remove(path.c_str());
}

TEST_F(DurabilityUnitTest, BadChecksumOnFinalRecordIsATornTail) {
  const std::string path = TempPath("tail_crc.log");
  WalRecord a{WalRecord::Op::kDefine, 1, "R0(x, y) := x <= 0"};
  WalRecord b{WalRecord::Op::kDefine, 2, "R1(x, y) := y <= 0"};
  std::string contents = WalFileWith({a, b});
  contents.back() ^= 0x40;  // corrupt the last payload byte
  WriteFile(path, contents);
  auto replay = ReadWal(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_TRUE(replay->torn_tail);
  ASSERT_EQ(replay->records.size(), 1u);
  std::remove(path.c_str());
}

TEST_F(DurabilityUnitTest, MidLogCorruptionIsRejectedWithTheOffset) {
  const std::string path = TempPath("midlog.log");
  WalRecord a{WalRecord::Op::kDefine, 1, "R0(x, y) := x <= 0"};
  WalRecord b{WalRecord::Op::kDefine, 2, "R1(x, y) := y <= 0"};
  std::string contents = WalFileWith({a, b});
  // Flip a byte inside the FIRST record's payload: bytes follow it, so
  // this cannot be a torn append.
  contents[8 + 8 + 4] ^= 0x01;
  WriteFile(path, contents);
  auto replay = ReadWal(path);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kInternal);
  // The error names the offset of the corrupt record (the first record
  // starts right after the 8-byte magic).
  EXPECT_NE(replay.status().message().find("offset 8"), std::string::npos)
      << replay.status().message();
  std::remove(path.c_str());
}

TEST_F(DurabilityUnitTest, NonMonotoneStampsAreCorruption) {
  const std::string path = TempPath("stamps.log");
  WalRecord a{WalRecord::Op::kDefine, 7, "R0(x, y) := x <= 0"};
  WalRecord b{WalRecord::Op::kDefine, 7, "R1(x, y) := y <= 0"};
  WriteFile(path, WalFileWith({a, b}));
  auto replay = ReadWal(path);
  ASSERT_FALSE(replay.ok());
  EXPECT_NE(replay.status().message().find("non-monotone"), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Durable-database behavior, in-process.

class DurableDatabaseTest : public DurabilityUnitTest {
 protected:
  std::string NewDir(const std::string& leaf) {
    std::string dir = ::testing::TempDir() + "/ccdb_durable_" + leaf;
    std::system(("rm -rf '" + dir + "'").c_str());
    return dir;
  }
};

TEST_F(DurableDatabaseTest, SurvivesCloseAndReopen) {
  const std::string dir = NewDir("reopen");
  std::uint64_t version_before = 0;
  {
    auto db = ConstraintDatabase::OpenDurable(dir);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE(db->Define("A(x, y) := x + y <= 3").ok());
    ASSERT_TRUE(db->Define("B(x, y) := x - y <= 1").ok());
    ASSERT_TRUE(db->Drop("A").ok());
    version_before = db->catalog().version();
  }  // destructor folds the WAL into a checkpoint
  auto reopened = ConstraintDatabase::OpenDurable(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_FALSE(reopened->catalog().HasRelation("A"));
  EXPECT_TRUE(reopened->catalog().HasRelation("B"));
  // Strictly monotone across the close/open boundary.
  EXPECT_GT(reopened->catalog().version(), version_before);
  RemoveTree(dir);
}

TEST_F(DurableDatabaseTest, RecoversFromWalWithoutCheckpoint) {
  const std::string dir = NewDir("wal_only");
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  // Hand-craft a WAL as a crashed process would leave it: records only,
  // no checkpoint, plus a torn half-record at the tail.
  std::string contents =
      WalFileWith({{WalRecord::Op::kDefine, 3, "A(x, y) := x + y <= 3"},
                   {WalRecord::Op::kDefine, 8, "B(x, y) := x - y <= 1"},
                   {WalRecord::Op::kDrop, 11, "A"}});
  contents += "\x99\x00\x00\x00";  // torn frame header
  WriteFile(dir + "/wal.log", contents);
  auto db = ConstraintDatabase::OpenDurable(dir);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_FALSE(db->catalog().HasRelation("A"));
  EXPECT_TRUE(db->catalog().HasRelation("B"));
  ASSERT_NE(db->recovery_info(), nullptr);
  EXPECT_TRUE(db->recovery_info()->torn_tail);
  EXPECT_EQ(db->recovery_info()->replayed_records, 3u);
  // Monotone past the largest stamp on disk.
  EXPECT_GT(db->catalog().version(), 11u);
  RemoveTree(dir);
}

TEST_F(DurableDatabaseTest, MidLogCorruptionRefusesToOpen) {
  const std::string dir = NewDir("corrupt");
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  std::string contents =
      WalFileWith({{WalRecord::Op::kDefine, 3, "A(x, y) := x + y <= 3"},
                   {WalRecord::Op::kDefine, 8, "B(x, y) := x - y <= 1"}});
  contents[8 + 8 + 4] ^= 0x01;  // first record's payload, bytes follow
  WriteFile(dir + "/wal.log", contents);
  auto db = ConstraintDatabase::OpenDurable(dir);
  ASSERT_FALSE(db.ok());
  EXPECT_NE(db.status().message().find("offset"), std::string::npos)
      << db.status().message();
  RemoveTree(dir);
}

TEST_F(DurableDatabaseTest, CheckpointRotatesTheWal) {
  const std::string dir = NewDir("ckpt");
  auto db = ConstraintDatabase::OpenDurable(dir);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE(db->Define("A(x, y) := x + y <= 3").ok());
  ASSERT_TRUE(db->Checkpoint().ok());
  // After rotation the WAL holds no records; recovery must come from the
  // checkpoint alone.
  auto replay = ReadWal(dir + "/wal.log");
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->records.size(), 0u);
  auto reopened = ConstraintDatabase::OpenDurable(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE(reopened->catalog().HasRelation("A"));
  EXPECT_NE(reopened->recovery_info()->checkpoint_file, "");
  RemoveTree(dir);
}

TEST_F(DurableDatabaseTest, CorruptCheckpointFallsBackToOlderOne) {
  const std::string dir = NewDir("ckpt_fallback");
  {
    auto db = ConstraintDatabase::OpenDurable(dir);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db->Define("A(x, y) := x + y <= 3").ok());
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  // Plant a newer, corrupt checkpoint: recovery must warn and fall back.
  WriteFile(dir + "/ckpt-99999999.ccdb", "# ccdb checkpoint v1\ngarbage\n");
  auto db = ConstraintDatabase::OpenDurable(dir);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_TRUE(db->catalog().HasRelation("A"));
  EXPECT_EQ(db->recovery_info()->checkpoint_file.find("ckpt-99999999"),
            std::string::npos)
      << "fallback should skip the corrupt file, got "
      << db->recovery_info()->checkpoint_file;
  RemoveTree(dir);
}

TEST_F(DurableDatabaseTest, ShortWriteFailsTheMutationCleanly) {
  const std::string dir = NewDir("short");
  auto db = ConstraintDatabase::OpenDurable(dir);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE(db->Define("A(x, y) := x + y <= 3").ok());
  FailpointRegistry::Global().Set(
      "wal.append.write", {FailpointSpec::Kind::kShortWrite, 1});
  Status failed = db->Define("B(x, y) := x - y <= 1");
  EXPECT_FALSE(failed.ok());
  // The failed mutation is in neither the catalog nor the log, and the
  // log is not torn: the next mutation appends cleanly.
  EXPECT_FALSE(db->catalog().HasRelation("B"));
  ASSERT_TRUE(db->Define("C(x, y) := x <= 0").ok());
  auto reopened = ConstraintDatabase::OpenDurable(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE(reopened->catalog().HasRelation("A"));
  EXPECT_FALSE(reopened->catalog().HasRelation("B"));
  EXPECT_TRUE(reopened->catalog().HasRelation("C"));
  RemoveTree(dir);
}

TEST_F(DurableDatabaseTest, CheckpointOnInMemoryDatabaseIsRejected) {
  ConstraintDatabase db;
  EXPECT_FALSE(db.durable());
  EXPECT_EQ(db.recovery_info(), nullptr);
  EXPECT_EQ(db.Checkpoint().code(), StatusCode::kInvalidArgument);
}

TEST_F(DurableDatabaseTest, InsertSurvivesCloseAndReopen) {
  const std::string dir = NewDir("insert_reopen");
  {
    auto db = ConstraintDatabase::OpenDurable(dir);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE(db->Define("E(x, y) := x + y <= 1 and x >= 0").ok());
    ASSERT_TRUE(db->Insert("E(x, y) := x - y <= 0 and x >= 10").ok());
    // An insert into a missing relation or at the wrong arity never
    // reaches the WAL.
    EXPECT_FALSE(db->Insert("Nope(x) := x <= 0").ok());
    EXPECT_FALSE(db->Insert("E(x) := x <= 0").ok());
  }  // destructor folds Define + Insert into a checkpoint
  auto reopened = ConstraintDatabase::OpenDurable(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto original = reopened->Contains("E", {Rational(BigInt(0)),
                                           Rational(BigInt(1))});
  auto inserted = reopened->Contains("E", {Rational(BigInt(10)),
                                           Rational(BigInt(11))});
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(inserted.ok());
  EXPECT_TRUE(*original) << "original tuples survive";
  EXPECT_TRUE(*inserted) << "inserted delta survives the reopen";
  RemoveTree(dir);
}

TEST_F(DurableDatabaseTest, InsertReplaysFromWalWithoutCheckpoint) {
  const std::string dir = NewDir("insert_wal_only");
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  // A crashed process's WAL: Define then Insert, no checkpoint. Replay
  // must append the kInsert payload's tuples onto the defined relation.
  WriteFile(dir + "/wal.log",
            WalFileWith(
                {{WalRecord::Op::kDefine, 3, "E(x, y) := x + y <= 1"},
                 {WalRecord::Op::kInsert, 7, "E(x, y) := x - y <= 0"}}));
  auto db = ConstraintDatabase::OpenDurable(dir);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(db->recovery_info()->replayed_records, 2u);
  auto rel = db->Relation("E");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->tuples().size(), 2u) << "defined tuple + inserted delta";
  RemoveTree(dir);
}

TEST_F(DurableDatabaseTest, PerRelationVersionsMonotoneAcrossReopen) {
  const std::string dir = NewDir("relation_versions");
  RelationVersion before;
  {
    auto db = ConstraintDatabase::OpenDurable(dir);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE(db->Define("E(x, y) := x + y <= 1").ok());
    auto defined =
        db->catalog().Snapshot()->GetRelationVersion("E");
    ASSERT_TRUE(defined.has_value());
    // An append-only insert bumps the change version, never the base
    // (the prefix-stability proof incremental fixpoints rely on).
    ASSERT_TRUE(db->Insert("E(x, y) := x - y <= 0 and x >= 5").ok());
    auto inserted =
        db->catalog().Snapshot()->GetRelationVersion("E");
    ASSERT_TRUE(inserted.has_value());
    EXPECT_GT(inserted->version, defined->version);
    EXPECT_EQ(inserted->base, defined->base);
    before = *inserted;
  }
  auto reopened = ConstraintDatabase::OpenDurable(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto recovered =
      reopened->catalog().Snapshot()->GetRelationVersion("E");
  ASSERT_TRUE(recovered.has_value());
  // Recovery re-stamps every per-relation version past everything the
  // previous process handed out: a memo cache keyed on (relation,
  // version) can never alias a pre-crash state.
  EXPECT_GT(recovered->version, before.version);
  RemoveTree(dir);
}

}  // namespace
}  // namespace ccdb

// Custom main: in child mode (CCDB_CRASH_CHILD) this binary is the crash
// driver, re-exec'd by the matrix test above; otherwise it runs gtest.
// Defining main here overrides the gtest_main the test link line carries.
int main(int argc, char** argv) {
  if (std::getenv("CCDB_CRASH_CHILD") != nullptr) {
    return ccdb::RunCrashChild();
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
