#include "arith/bigint.h"

#include <cstdint>
#include <random>

#include <gtest/gtest.h>

namespace ccdb {
namespace {

TEST(BigIntTest, ZeroProperties) {
  BigInt zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_FALSE(zero.is_negative());
  EXPECT_EQ(zero.sign(), 0);
  EXPECT_EQ(zero.bit_length(), 0u);
  EXPECT_EQ(zero.ToString(), "0");
  EXPECT_EQ(zero, BigInt(0));
  EXPECT_EQ(-zero, zero);
}

TEST(BigIntTest, ConstructFromInt64) {
  EXPECT_EQ(BigInt(42).ToString(), "42");
  EXPECT_EQ(BigInt(-42).ToString(), "-42");
  EXPECT_EQ(BigInt(INT64_MAX).ToString(), "9223372036854775807");
  EXPECT_EQ(BigInt(INT64_MIN).ToString(), "-9223372036854775808");
}

TEST(BigIntTest, RoundTripInt64) {
  const std::int64_t values[] = {0,       1,        -1,        42,
                                 -12345,  INT64_MAX, INT64_MIN, 1ll << 32,
                                 -(1ll << 32)};
  for (std::int64_t v : values) {
    BigInt b(v);
    ASSERT_TRUE(b.FitsInt64());
    EXPECT_EQ(b.ToInt64(), v);
  }
}

TEST(BigIntTest, FromStringValid) {
  auto parsed = BigInt::FromString("123456789012345678901234567890");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->ToString(), "123456789012345678901234567890");

  auto negative = BigInt::FromString("-987654321");
  ASSERT_TRUE(negative.ok());
  EXPECT_EQ(negative->ToInt64(), -987654321);

  auto zero = BigInt::FromString("-0");
  ASSERT_TRUE(zero.ok());
  EXPECT_TRUE(zero->is_zero());
  EXPECT_FALSE(zero->is_negative());
}

TEST(BigIntTest, FromStringInvalid) {
  EXPECT_FALSE(BigInt::FromString("").ok());
  EXPECT_FALSE(BigInt::FromString("-").ok());
  EXPECT_FALSE(BigInt::FromString("12a3").ok());
  EXPECT_FALSE(BigInt::FromString("1.5").ok());
}

TEST(BigIntTest, BitLength) {
  EXPECT_EQ(BigInt(1).bit_length(), 1u);
  EXPECT_EQ(BigInt(2).bit_length(), 2u);
  EXPECT_EQ(BigInt(3).bit_length(), 2u);
  EXPECT_EQ(BigInt(4).bit_length(), 3u);
  EXPECT_EQ(BigInt(255).bit_length(), 8u);
  EXPECT_EQ(BigInt(256).bit_length(), 9u);
  EXPECT_EQ(BigInt(-256).bit_length(), 9u);
  EXPECT_EQ(BigInt::Pow2(100).bit_length(), 101u);
}

TEST(BigIntTest, Pow2) {
  EXPECT_EQ(BigInt::Pow2(0).ToInt64(), 1);
  EXPECT_EQ(BigInt::Pow2(10).ToInt64(), 1024);
  EXPECT_EQ(BigInt::Pow2(32).ToString(), "4294967296");
  EXPECT_EQ(BigInt::Pow2(64).ToString(), "18446744073709551616");
}

TEST(BigIntTest, AdditionAgainstInt128) {
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<std::int64_t> dist(INT64_MIN / 2,
                                                   INT64_MAX / 2);
  for (int i = 0; i < 2000; ++i) {
    std::int64_t a = dist(rng);
    std::int64_t b = dist(rng);
    EXPECT_EQ((BigInt(a) + BigInt(b)).ToInt64(), a + b);
    EXPECT_EQ((BigInt(a) - BigInt(b)).ToInt64(), a - b);
  }
}

TEST(BigIntTest, MultiplicationAgainstInt128) {
  std::mt19937_64 rng(11);
  std::uniform_int_distribution<std::int64_t> dist(-3000000000ll,
                                                   3000000000ll);
  for (int i = 0; i < 2000; ++i) {
    std::int64_t a = dist(rng);
    std::int64_t b = dist(rng);
    __int128 expected = static_cast<__int128>(a) * b;
    BigInt product = BigInt(a) * BigInt(b);
    __int128 got = 0;
    bool negative = product.is_negative();
    BigInt abs = product.Abs();
    BigInt two32 = BigInt::Pow2(32);
    // Reconstruct via division.
    BigInt rest = abs;
    __int128 scale = 1;
    while (!rest.is_zero()) {
      auto [q, r] = rest.DivMod(two32);
      got += scale * static_cast<__int128>(r.ToInt64());
      scale <<= 32;
      rest = q;
    }
    if (negative) got = -got;
    EXPECT_TRUE(got == expected) << a << " * " << b;
  }
}

TEST(BigIntTest, DivModAgainstInt64) {
  std::mt19937_64 rng(13);
  std::uniform_int_distribution<std::int64_t> dist(INT64_MIN + 1, INT64_MAX);
  for (int i = 0; i < 2000; ++i) {
    std::int64_t a = dist(rng);
    std::int64_t b = dist(rng) % 100000;
    if (b == 0) continue;
    auto [q, r] = BigInt(a).DivMod(BigInt(b));
    EXPECT_EQ(q.ToInt64(), a / b) << a << " / " << b;
    EXPECT_EQ(r.ToInt64(), a % b) << a << " % " << b;
  }
}

TEST(BigIntTest, DivModLargeRandomRoundTrip) {
  std::mt19937_64 rng(17);
  for (int i = 0; i < 500; ++i) {
    // Build random numbers of random limb sizes.
    auto random_big = [&](int limbs) {
      BigInt value;
      for (int j = 0; j < limbs; ++j) {
        value = value.ShiftLeft(32) + BigInt(static_cast<std::int64_t>(
                                          rng() & 0xffffffffull));
      }
      if (rng() & 1) value = -value;
      return value;
    };
    BigInt a = random_big(1 + static_cast<int>(rng() % 8));
    BigInt b = random_big(1 + static_cast<int>(rng() % 5));
    if (b.is_zero()) continue;
    auto [q, r] = a.DivMod(b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_TRUE(r.Abs() < b.Abs());
    // Remainder sign matches dividend (or zero).
    if (!r.is_zero()) {
      EXPECT_EQ(r.sign(), a.sign());
    }
  }
}

TEST(BigIntTest, KnuthDivisionAddBackCase) {
  // Crafted to exercise the rare "add back" correction in algorithm D.
  BigInt a = BigInt::Pow2(96) - BigInt::Pow2(64) + BigInt(1);
  BigInt b = BigInt::Pow2(64) - BigInt(1);
  auto [q, r] = a.DivMod(b);
  EXPECT_EQ(q * b + r, a);
  EXPECT_TRUE(r < b);
  EXPECT_FALSE(r.is_negative());
}

TEST(BigIntTest, ShiftRoundTrip) {
  BigInt v = BigInt(0x12345678) * BigInt(0x9abcdef0ll) + BigInt(7);
  for (std::uint64_t s : {1u, 7u, 31u, 32u, 33u, 63u, 64u, 100u}) {
    EXPECT_EQ(v.ShiftLeft(s).ShiftRight(s), v) << "shift " << s;
  }
  EXPECT_EQ(BigInt(-20).ShiftRight(2), BigInt(-5));
  EXPECT_EQ(BigInt(20).ShiftLeft(3), BigInt(160));
}

TEST(BigIntTest, Pow) {
  EXPECT_EQ(BigInt(2).Pow(10), BigInt(1024));
  EXPECT_EQ(BigInt(0).Pow(0), BigInt(1));
  EXPECT_EQ(BigInt(-3).Pow(3), BigInt(-27));
  EXPECT_EQ(BigInt(-3).Pow(4), BigInt(81));
  EXPECT_EQ(BigInt(10).Pow(20).ToString(), "100000000000000000000");
}

TEST(BigIntTest, Gcd) {
  EXPECT_EQ(BigInt::Gcd(BigInt(12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::Gcd(BigInt(-12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)), BigInt(5));
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(0)), BigInt(0));
  EXPECT_EQ(BigInt::Gcd(BigInt(17), BigInt(13)), BigInt(1));
  BigInt big = BigInt(10).Pow(30);
  EXPECT_EQ(BigInt::Gcd(big * BigInt(6), big * BigInt(4)), big * BigInt(2));
}

TEST(BigIntTest, Comparisons) {
  EXPECT_LT(BigInt(-5), BigInt(3));
  EXPECT_LT(BigInt(-5), BigInt(-3));
  EXPECT_LT(BigInt(3), BigInt(5));
  EXPECT_LE(BigInt(5), BigInt(5));
  EXPECT_GT(BigInt::Pow2(64), BigInt(INT64_MAX));
  EXPECT_LT(-BigInt::Pow2(64), BigInt(INT64_MIN));
}

TEST(BigIntTest, ToStringLarge) {
  BigInt v = BigInt(10).Pow(25) + BigInt(42);
  EXPECT_EQ(v.ToString(), "10000000000000000000000042");
  EXPECT_EQ((-v).ToString(), "-10000000000000000000000042");
}

TEST(BigIntTest, ToDouble) {
  EXPECT_DOUBLE_EQ(BigInt(12345).ToDouble(), 12345.0);
  EXPECT_DOUBLE_EQ(BigInt(-12345).ToDouble(), -12345.0);
  EXPECT_NEAR(BigInt::Pow2(100).ToDouble(), std::pow(2.0, 100), 1e15);
}

TEST(BigIntTest, IsEven) {
  EXPECT_TRUE(BigInt(0).IsEven());
  EXPECT_TRUE(BigInt(2).IsEven());
  EXPECT_TRUE(BigInt(-4).IsEven());
  EXPECT_FALSE(BigInt(1).IsEven());
  EXPECT_FALSE(BigInt(-7).IsEven());
}

// ---------------------------------------------------------------------------
// Spill/normalize regressions for the inline-word representation: for each
// checked-overflow site, a case that overflows the word by exactly one bit
// and one that shrinks a limb result back into the word range. The canonical
// invariant makes FitsInt64() the representation probe: it must be true
// exactly when the value fits, however the value was produced.
// ---------------------------------------------------------------------------

TEST(BigIntSpillTest, AddOverflowsWordByOneBitAndNormalizesBack) {
  BigInt spilled = BigInt(INT64_MAX) + BigInt(1);  // 2^63
  EXPECT_FALSE(spilled.FitsInt64());
  EXPECT_EQ(spilled.ToString(), "9223372036854775808");
  EXPECT_EQ(spilled.bit_length(), 64u);
  EXPECT_EQ(spilled, BigInt::Pow2(63));

  BigInt back = spilled + BigInt(-1);  // shrinks back into the word
  EXPECT_TRUE(back.FitsInt64());
  EXPECT_EQ(back.ToInt64(), INT64_MAX);
  EXPECT_EQ(back, BigInt(INT64_MAX));
  EXPECT_EQ(back.Hash(), BigInt(INT64_MAX).Hash());
  EXPECT_EQ(back.bit_length(), BigInt(INT64_MAX).bit_length());
}

TEST(BigIntSpillTest, SubOverflowsWordByOneBitAndNormalizesBack) {
  BigInt spilled = BigInt(INT64_MIN) - BigInt(1);  // -(2^63 + 1)
  EXPECT_FALSE(spilled.FitsInt64());
  EXPECT_EQ(spilled.ToString(), "-9223372036854775809");
  EXPECT_EQ(spilled.bit_length(), 64u);

  BigInt back = spilled + BigInt(1);
  EXPECT_TRUE(back.FitsInt64());
  EXPECT_EQ(back.ToInt64(), INT64_MIN);
  EXPECT_EQ(back, BigInt(INT64_MIN));
  EXPECT_EQ(back.Hash(), BigInt(INT64_MIN).Hash());
}

TEST(BigIntSpillTest, MulOverflowsWordByOneBitAndNormalizesBack) {
  BigInt spilled = BigInt(1ll << 32) * BigInt(1ll << 31);  // 2^63
  EXPECT_FALSE(spilled.FitsInt64());
  EXPECT_EQ(spilled, BigInt::Pow2(63));
  EXPECT_EQ(spilled.bit_length(), 64u);

  BigInt fits = BigInt(1ll << 32) * BigInt((1ll << 31) - 1);  // 2^63 - 2^32
  EXPECT_TRUE(fits.FitsInt64());
  EXPECT_EQ(fits.ToInt64(), ((1ll << 31) - 1) << 32);

  // Divide the spilled product back down: the limb quotient re-inlines.
  BigInt back = spilled / BigInt(2);
  EXPECT_TRUE(back.FitsInt64());
  EXPECT_EQ(back.ToInt64(), 1ll << 62);
  EXPECT_EQ(back.Hash(), BigInt(1ll << 62).Hash());
}

TEST(BigIntSpillTest, DivModSpillsOnlyForMinOverMinusOne) {
  // The lone overflowing hardware quotient: INT64_MIN / -1 = 2^63.
  auto [q, r] = BigInt(INT64_MIN).DivMod(BigInt(-1));
  EXPECT_FALSE(q.FitsInt64());
  EXPECT_EQ(q.ToString(), "9223372036854775808");
  EXPECT_TRUE(r.is_zero());

  // A limb dividend whose quotient and remainder both re-inline.
  BigInt dividend = BigInt::Pow2(64) + BigInt(5);
  auto [q2, r2] = dividend.DivMod(BigInt(4));
  EXPECT_TRUE(q2.FitsInt64());
  EXPECT_EQ(q2.ToInt64(), (1ll << 62) + 1);
  EXPECT_TRUE(r2.FitsInt64());
  EXPECT_EQ(r2.ToInt64(), 1);
  EXPECT_EQ(q2.bit_length(), 63u);
}

TEST(BigIntSpillTest, NegationAtTheWordBoundary) {
  // Regression from the differential harness: negating the limb value +2^63
  // must normalize back down to the inline INT64_MIN.
  BigInt two63 = BigInt::Pow2(63);
  EXPECT_FALSE(two63.FitsInt64());
  BigInt negated = -two63;
  EXPECT_TRUE(negated.FitsInt64());
  EXPECT_EQ(negated.ToInt64(), INT64_MIN);
  EXPECT_EQ(negated, BigInt(INT64_MIN));
  EXPECT_EQ(negated.Hash(), BigInt(INT64_MIN).Hash());

  // And the spill direction: |INT64_MIN| and -INT64_MIN leave the word.
  EXPECT_FALSE(BigInt(INT64_MIN).Abs().FitsInt64());
  EXPECT_EQ(BigInt(INT64_MIN).Abs(), two63);
  EXPECT_FALSE((-BigInt(INT64_MIN)).FitsInt64());
  EXPECT_EQ(-BigInt(INT64_MIN), two63);
}

TEST(BigIntSpillTest, GcdAtTheWordBoundary) {
  // gcd(INT64_MIN, 0) = 2^63 spills out of the word gcd.
  BigInt g = BigInt::Gcd(BigInt(INT64_MIN), BigInt(0));
  EXPECT_FALSE(g.FitsInt64());
  EXPECT_EQ(g, BigInt::Pow2(63));

  // gcd of two limb values that collapses back into the word.
  BigInt g2 = BigInt::Gcd(BigInt::Pow2(70), BigInt::Pow2(70) + BigInt(1024));
  EXPECT_TRUE(g2.FitsInt64());
  EXPECT_EQ(g2.ToInt64(), 1024);
  EXPECT_EQ(g2.bit_length(), 11u);
}

TEST(BigIntSpillTest, ShiftsAcrossTheWordBoundary) {
  EXPECT_TRUE(BigInt(1).ShiftLeft(62).FitsInt64());
  EXPECT_FALSE(BigInt(1).ShiftLeft(63).FitsInt64());
  EXPECT_EQ(BigInt(1).ShiftLeft(63), BigInt::Pow2(63));
  EXPECT_EQ(BigInt(1).ShiftLeft(63).bit_length(), 64u);

  BigInt wide = BigInt::Pow2(64);
  EXPECT_EQ(wide.ShiftRight(1), BigInt::Pow2(63));
  EXPECT_FALSE(wide.ShiftRight(1).FitsInt64());
  BigInt back = wide.ShiftRight(2);
  EXPECT_TRUE(back.FitsInt64());
  EXPECT_EQ(back.ToInt64(), 1ll << 62);
  EXPECT_EQ(back.Hash(), BigInt(1ll << 62).Hash());
}

TEST(BigIntSpillTest, Pow2AndFromInt128AtTheWordBoundary) {
  EXPECT_TRUE(BigInt::Pow2(62).FitsInt64());
  EXPECT_FALSE(BigInt::Pow2(63).FitsInt64());
  EXPECT_EQ(BigInt::Pow2(62).bit_length(), 63u);
  EXPECT_EQ(BigInt::Pow2(63).bit_length(), 64u);

  EXPECT_TRUE(BigInt::FromInt128(INT64_MAX).FitsInt64());
  EXPECT_TRUE(BigInt::FromInt128(static_cast<__int128>(INT64_MIN)).FitsInt64());
  EXPECT_FALSE(
      BigInt::FromInt128(static_cast<__int128>(INT64_MAX) + 1).FitsInt64());
  EXPECT_FALSE(
      BigInt::FromInt128(static_cast<__int128>(INT64_MIN) - 1).FitsInt64());
  EXPECT_EQ(BigInt::FromInt128(static_cast<__int128>(INT64_MIN) - 1).ToString(),
            "-9223372036854775809");
  EXPECT_EQ(BigInt::FromInt128((static_cast<__int128>(1) << 126) * -1)
                .bit_length(),
            127u);
}

TEST(BigIntSpillTest, RepresentationIndependentEqualityAcrossPaths) {
  // The same value reached through spill-and-shrink arithmetic, string
  // parsing, and direct construction must be one value: equal, same hash,
  // same bit length, same rendering.
  BigInt via_arith = (BigInt::Pow2(63) + BigInt(7)) - BigInt::Pow2(63);
  BigInt via_string = *BigInt::FromString("7");
  BigInt direct(7);
  EXPECT_EQ(via_arith, direct);
  EXPECT_EQ(via_string, direct);
  EXPECT_EQ(via_arith.Hash(), direct.Hash());
  EXPECT_EQ(via_string.Hash(), direct.Hash());
  EXPECT_EQ(via_arith.bit_length(), direct.bit_length());
  EXPECT_TRUE(via_arith.FitsInt64());
  EXPECT_EQ(via_arith.ToInt64(), 7);
}

TEST(BigIntTest, StringRoundTripRandom) {
  std::mt19937_64 rng(23);
  for (int i = 0; i < 200; ++i) {
    BigInt value(static_cast<std::int64_t>(rng()));
    value = value * value * BigInt(static_cast<std::int64_t>(rng() % 1000));
    auto reparsed = BigInt::FromString(value.ToString());
    ASSERT_TRUE(reparsed.ok());
    EXPECT_EQ(*reparsed, value);
  }
}

}  // namespace
}  // namespace ccdb
