#include "base/trace.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace ccdb {
namespace {

// The tracer is a process-wide singleton; each test restores a clean,
// disabled state.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().SetEnabled(false);
    Tracer::Global().Clear();
  }
  void TearDown() override {
    Tracer::Global().SetEnabled(false);
    Tracer::Global().Clear();
  }
};

TEST_F(TraceTest, DisabledRecordsNothing) {
  ASSERT_FALSE(Tracer::Global().enabled());
  {
    CCDB_TRACE_SPAN("disabled.span");
  }
  EXPECT_EQ(Tracer::Global().size(), 0u);
}

TEST_F(TraceTest, EnabledRecordsCompleteSpan) {
  Tracer::Global().SetEnabled(true);
  {
    CCDB_TRACE_SPAN("unit.span");
  }
  ASSERT_EQ(Tracer::Global().size(), 1u);
  std::string json = Tracer::Global().ToChromeTraceJson();
  EXPECT_NE(json.find("\"unit.span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST_F(TraceTest, NestedSpansBothRecorded) {
  Tracer::Global().SetEnabled(true);
  {
    CCDB_TRACE_SPAN("outer");
    {
      CCDB_TRACE_SPAN("inner");
    }
  }
  EXPECT_EQ(Tracer::Global().size(), 2u);
  std::string json = Tracer::Global().ToChromeTraceJson();
  // Destruction order records "inner" first; both must be present.
  EXPECT_NE(json.find("\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"outer\""), std::string::npos);
}

TEST_F(TraceTest, ChromeTraceJsonShape) {
  Tracer::Global().SetEnabled(true);
  {
    CCDB_TRACE_SPAN("shape.check");
  }
  std::string json = Tracer::Global().ToChromeTraceJson();
  // Top-level object with the traceEvents array, as chrome://tracing
  // expects.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  for (const char* field : {"\"name\"", "\"cat\"", "\"ph\"", "\"ts\"",
                            "\"dur\"", "\"pid\"", "\"tid\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
  // Balanced braces/brackets — a cheap well-formedness check that catches
  // missing commas/terminators without a JSON parser dependency.
  int braces = 0, brackets = 0;
  for (char c : json) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST_F(TraceTest, WriteChromeTraceRoundTrips) {
  Tracer::Global().SetEnabled(true);
  {
    CCDB_TRACE_SPAN("file.span");
  }
  std::string path = ::testing::TempDir() + "/ccdb_trace_test.json";
  ASSERT_TRUE(Tracer::Global().WriteChromeTrace(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), Tracer::Global().ToChromeTraceJson());
  std::remove(path.c_str());
}

TEST_F(TraceTest, ConcurrentSpansAllRecorded) {
  Tracer::Global().SetEnabled(true);
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        CCDB_TRACE_SPAN("concurrent.span");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(Tracer::Global().size(),
            static_cast<std::size_t>(kThreads * kSpansPerThread));
  EXPECT_EQ(Tracer::Global().dropped(), 0u);
}

TEST_F(TraceTest, SpanCapturesEnabledAtConstruction) {
  // A span started while tracing is off must not record, even if tracing
  // turns on before it ends (it has no start timestamp).
  {
    CCDB_TRACE_SPAN("straddling.span");
    Tracer::Global().SetEnabled(true);
  }
  EXPECT_EQ(Tracer::Global().size(), 0u);
}

TEST_F(TraceTest, ClearDiscardsEvents) {
  Tracer::Global().SetEnabled(true);
  {
    CCDB_TRACE_SPAN("cleared.span");
  }
  ASSERT_EQ(Tracer::Global().size(), 1u);
  Tracer::Global().Clear();
  EXPECT_EQ(Tracer::Global().size(), 0u);
  EXPECT_TRUE(Tracer::Global().enabled());
}

TEST_F(TraceTest, ThreadIdsAreSmallAndStablePerThread) {
  std::uint64_t main_id_1 = TraceSpan::CurrentThreadId();
  std::uint64_t main_id_2 = TraceSpan::CurrentThreadId();
  EXPECT_EQ(main_id_1, main_id_2);
  std::atomic<std::uint64_t> other_id{main_id_1};
  std::thread other([&] { other_id = TraceSpan::CurrentThreadId(); });
  other.join();
  EXPECT_NE(other_id.load(), main_id_1);
}

}  // namespace
}  // namespace ccdb
