// Structured query-log tests (Observability v2, DESIGN.md §12): the
// JSONL black-box recorder must capture every facade query — plain,
// governed, EXPLAIN ANALYZE, and failed — with the schema-3 fields
// (read-set and invalidation scope, session id, resolved-config
// fingerprint), while never changing an answer (logging is observation
// only).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/config.h"
#include "base/query_log.h"
#include "base/resource.h"
#include "engine/database.h"
#include "engine/session.h"

namespace ccdb {
namespace {

std::string TempLogPath(const char* tag) {
  return testing::TempDir() + "/ccdb_query_log_" + tag + ".jsonl";
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

class QueryLogTest : public testing::Test {
 protected:
  void TearDown() override { QueryLog::Global().Disable(); }
};

TEST_F(QueryLogTest, HashTextIsStableHex) {
  std::string h = QueryLog::HashText("exists y (S(x, y) and y <= 0)");
  EXPECT_EQ(h.size(), 16u);
  for (char c : h) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
  }
  EXPECT_EQ(h, QueryLog::HashText("exists y (S(x, y) and y <= 0)"));
  EXPECT_NE(h, QueryLog::HashText("exists y (S(x, y) and y <= 1)"));
}

TEST_F(QueryLogTest, RecordsPlainGovernedAndAnalyzedQueries) {
  std::string path = TempLogPath("kinds");
  std::remove(path.c_str());
  ASSERT_TRUE(QueryLog::Global().Enable(path).ok());

  ConstraintDatabase db;
  ASSERT_TRUE(db.Define("S(x, y) := 4*x^2 - y - 20*x + 25 <= 0").ok());
  const std::string text = "exists y (S(x, y) and y <= 0)";
  ASSERT_TRUE(db.Query(text).ok());

  QueryPolicy policy;
  policy.limits = ResourceLimits::Deadline(30.0);
  QueryVerdict verdict;
  ASSERT_TRUE(db.QueryWithPolicy(text, policy, &verdict).ok());

  ASSERT_TRUE(db.ExplainAnalyze(text).ok());

  // A parse failure is still one record, carrying the error code.
  EXPECT_FALSE(db.Query("exists y (").ok());

  QueryLog::Global().Disable();
  std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 4u);

  // Every record is one JSON object with the schema-3 envelope. Facade
  // (sessionless) records carry session_id 0 and the process config's
  // 16-hex fingerprint.
  const std::string process_fp =
      "\"config\":\"" + EngineConfig::Process().Fingerprint() + "\"";
  for (const std::string& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"schema_version\":3"), std::string::npos) << line;
    EXPECT_NE(line.find("\"session_id\":0"), std::string::npos) << line;
    EXPECT_NE(line.find(process_fp), std::string::npos) << line;
    EXPECT_NE(line.find("\"text_hash\":\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"catalog_version\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"elapsed_seconds\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"read_set\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"invalidation\":"), std::string::npos) << line;
  }
  // Parsable queries carry their relation read-set and a per-relation
  // invalidation scope; the parse failure falls back to "global".
  EXPECT_NE(lines[0].find("\"read_set\":[\"S\"]"), std::string::npos);
  EXPECT_NE(lines[0].find("\"invalidation\":\"relations:[S]\""),
            std::string::npos);
  EXPECT_NE(lines[1].find("\"invalidation\":\"relations:[S]\""),
            std::string::npos);
  EXPECT_NE(lines[2].find("\"invalidation\":\"relations:[S]\""),
            std::string::npos);
  EXPECT_NE(lines[3].find("\"invalidation\":\"global\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"kind\":\"query\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"ok\":true"), std::string::npos);
  EXPECT_NE(lines[1].find("\"kind\":\"governed\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"verdict\":"), std::string::npos);
  EXPECT_NE(lines[1].find("\"rung\":\"full\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"kind\":\"explain_analyze\""),
            std::string::npos);
  EXPECT_NE(lines[2].find("\"profile\":"), std::string::npos);
  EXPECT_NE(lines[3].find("\"ok\":false"), std::string::npos);
  EXPECT_NE(lines[3].find("\"error_code\":"), std::string::npos);

  // Identical text, identical hash across record kinds.
  std::string hash = "\"text_hash\":\"" + QueryLog::HashText(text) + "\"";
  EXPECT_NE(lines[0].find(hash), std::string::npos);
  EXPECT_NE(lines[1].find(hash), std::string::npos);
  EXPECT_NE(lines[2].find(hash), std::string::npos);
}

TEST_F(QueryLogTest, SessionRecordsCarrySessionIdAndConfigFingerprint) {
  ConstraintDatabase db;
  ASSERT_TRUE(db.Define("S(x, y) := 4*x^2 - y - 20*x + 25 <= 0").ok());

  // A session routes its records to a session-owned log, stamped with the
  // session's id and the fingerprint of ITS resolved config — which
  // differs from the process fingerprint when the config differs.
  EngineConfig config = EngineConfig::Process().WithPlan(false).WithThreads(2);
  std::unique_ptr<Session> session = db.OpenSession(config);
  std::string path = TempLogPath("session");
  std::remove(path.c_str());
  QueryLog session_log;
  ASSERT_TRUE(session_log.Enable(path).ok());
  session->SetQueryLog(&session_log);

  ASSERT_TRUE(session->Query("exists y (S(x, y) and y <= 0)").ok());
  session_log.Disable();

  std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"session_id\":" + std::to_string(session->id())),
            std::string::npos)
      << lines[0];
  EXPECT_NE(lines[0].find("\"config\":\"" + config.Fingerprint() + "\""),
            std::string::npos)
      << lines[0];
  EXPECT_EQ(config.Fingerprint(), session->config_fingerprint());
  EXPECT_NE(config.Fingerprint(), EngineConfig::Process().Fingerprint());
  // The global log saw none of it.
  EXPECT_FALSE(QueryLog::Global().enabled());
}

TEST_F(QueryLogTest, LoggingIsObservationOnly) {
  ConstraintDatabase db;
  ASSERT_TRUE(db.Define("S(x, y) := 4*x^2 - y - 20*x + 25 <= 0").ok());
  const std::string text = "exists y (S(x, y) and y <= -1)";

  QueryLog::Global().Disable();
  auto off = db.Query(text);
  ASSERT_TRUE(off.ok());

  std::string path = TempLogPath("identity");
  std::remove(path.c_str());
  ASSERT_TRUE(QueryLog::Global().Enable(path).ok());
  auto on = db.Query(text);
  ASSERT_TRUE(on.ok());
  QueryLog::Global().Disable();

  EXPECT_EQ(off->relation.ToString(off->column_names),
            on->relation.ToString(on->column_names));
  EXPECT_EQ(ReadLines(path).size(), 1u);
}

TEST_F(QueryLogTest, EnableOnUnopenablePathFailsCleanly) {
  std::string path = testing::TempDir() + "/no_such_dir_ccdb/sub/q.jsonl";
  Status st = QueryLog::Global().Enable(path);
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(QueryLog::Global().enabled());
  // The engine keeps answering with the log unopenable.
  ConstraintDatabase db;
  ASSERT_TRUE(db.Define("S(x) := x <= 1").ok());
  EXPECT_TRUE(db.Query("S(x) and x >= 0").ok());
}

TEST_F(QueryLogTest, WriteFailureDisablesLoggingWithoutFailingQueries) {
  // /dev/full accepts the open but fails every flush with ENOSPC — the
  // canonical disk-full stand-in. The first failed record must emit one
  // warning and self-disable; queries are never failed over it.
  ASSERT_TRUE(QueryLog::Global().Enable("/dev/full").ok());
  ASSERT_TRUE(QueryLog::Global().enabled());

  std::uint64_t before = QueryLog::Global().records_written();
  QueryLog::Global().Append("{\"probe\":\"disk-full\"}");
  EXPECT_FALSE(QueryLog::Global().enabled())
      << "write failure must disable the log";
  EXPECT_EQ(QueryLog::Global().records_written(), before);

  // Further appends are silent no-ops, and the facade still answers.
  QueryLog::Global().Append("{\"probe\":\"after-disable\"}");
  EXPECT_EQ(QueryLog::Global().records_written(), before);
  ConstraintDatabase db;
  ASSERT_TRUE(db.Define("S(x) := x <= 1").ok());
  EXPECT_TRUE(db.Query("S(x) and x >= 0").ok());
}

TEST_F(QueryLogTest, DisableStopsRecording) {
  std::string path = TempLogPath("disable");
  std::remove(path.c_str());
  ASSERT_TRUE(QueryLog::Global().Enable(path).ok());
  std::uint64_t before = QueryLog::Global().records_written();
  QueryLog::Global().Append("{\"probe\":1}");
  EXPECT_EQ(QueryLog::Global().records_written(), before + 1);
  QueryLog::Global().Disable();
  QueryLog::Global().Append("{\"probe\":2}");
  EXPECT_EQ(QueryLog::Global().records_written(), before + 1);
  EXPECT_EQ(ReadLines(path).size(), 1u);
}

}  // namespace
}  // namespace ccdb
