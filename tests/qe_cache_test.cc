// Tests for the memo layers on top of the hash-consed IR: the QE result
// cache (byte-identical output cache-on vs cache-off, hit metrics), the
// sharded memo table's FIFO eviction, the engine's whole-query cache, and
// its invalidation by catalog mutation (the version stamp).

#include <gtest/gtest.h>

#include "base/memo.h"
#include "base/metrics.h"
#include "constraint/formula.h"
#include "engine/database.h"
#include "qe/qe.h"
#include "qe/qe_cache.h"

namespace ccdb {
namespace {

// The figure-1 query with an extra disjunct, as an already-instantiated
// formula: exists y ((4x^2 - y - 20x + 25 <= 0 and y <= 0) or
//                    (x^2 + y^2 <= 1 and y >= x)).
Formula TestQuery() {
  Polynomial x = Polynomial::Var(0), y = Polynomial::Var(1);
  Formula band = Formula::And(
      Formula::Compare(Polynomial(4) * x * x - y - Polynomial(20) * x +
                           Polynomial(25),
                       RelOp::kLe, Polynomial(0)),
      Formula::Compare(y, RelOp::kLe, Polynomial(0)));
  Formula disk = Formula::And(
      Formula::Compare(x * x + y * y, RelOp::kLe, Polynomial(1)),
      Formula::Compare(y, RelOp::kGe, x));
  return Formula::Exists(1, Formula::Or(band, disk));
}

std::string RunQe(const Formula& f) {
  QeOptions options;
  QeStats stats;
  StatusOr<ConstraintRelation> result =
      EliminateQuantifiers(f, 1, options, &stats);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result->ToString({"x"});
}

// Restores the cache switch after each test so the binary's tests cannot
// leak state into each other (the suite may run with CCDB_QE_CACHE=0).
class QeCacheTest : public ::testing::Test {
 protected:
  void TearDown() override { SetMemoCachesEnabled(was_enabled_); }
  bool was_enabled_ = MemoCachesEnabled();
};

TEST_F(QeCacheTest, CacheOnAndOffProduceByteIdenticalOutput) {
  SetMemoCachesEnabled(true);
  QeResultCache().Clear();
  std::string cold = RunQe(TestQuery());
  std::string warm = RunQe(TestQuery());  // same interned formula -> hit
  SetMemoCachesEnabled(false);
  std::string uncached = RunQe(TestQuery());
  EXPECT_EQ(cold, warm);
  EXPECT_EQ(cold, uncached);
}

TEST_F(QeCacheTest, SecondEliminationHitsTheCache) {
  SetMemoCachesEnabled(true);
  QeResultCache().Clear();
  Counter* hits = MetricsRegistry::Global().GetCounter("qe_cache_hits");
  RunQe(TestQuery());
  std::uint64_t hits_after_cold = hits->value();
  RunQe(TestQuery());
  EXPECT_GT(hits->value(), hits_after_cold);
}

TEST_F(QeCacheTest, DisabledCacheIsNeverConsulted) {
  SetMemoCachesEnabled(false);
  Counter* hits = MetricsRegistry::Global().GetCounter("qe_cache_hits");
  Counter* misses = MetricsRegistry::Global().GetCounter("qe_cache_misses");
  std::uint64_t hits_before = hits->value();
  std::uint64_t misses_before = misses->value();
  RunQe(TestQuery());
  RunQe(TestQuery());
  EXPECT_EQ(hits->value(), hits_before);
  EXPECT_EQ(misses->value(), misses_before);
}

TEST(ShardedMemoCacheTest, FifoEvictionBoundsOccupancy) {
  ShardedMemoCache<int, int> cache("memo_test", /*capacity=*/8,
                                   /*num_shards=*/1);
  for (int i = 0; i < 50; ++i) cache.Insert(i, i * i);
  EXPECT_LE(cache.size(), 8u);
  int out = 0;
  EXPECT_FALSE(cache.Lookup(0, &out));  // oldest entries evicted first
  EXPECT_TRUE(cache.Lookup(49, &out));
  EXPECT_EQ(out, 49 * 49);
  cache.SetCapacity(2);
  EXPECT_LE(cache.size(), 2u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ShardedMemoCacheTest, FirstWriterWins) {
  ShardedMemoCache<int, int> cache("memo_test_dup", 8);
  cache.Insert(1, 10);
  cache.Insert(1, 20);  // duplicate insert is a no-op
  int out = 0;
  ASSERT_TRUE(cache.Lookup(1, &out));
  EXPECT_EQ(out, 10);
}

TEST_F(QeCacheTest, CatalogMutationAdvancesVersion) {
  Catalog catalog;
  std::uint64_t v0 = catalog.version();
  ASSERT_TRUE(
      catalog.AddRelationFromText("S(x, y) := x + y <= 1").ok());
  std::uint64_t v1 = catalog.version();
  EXPECT_NE(v0, v1);
  ASSERT_TRUE(catalog.DropRelation("S").ok());
  EXPECT_NE(catalog.version(), v1);
  // Two distinct catalogs never share a version, even when empty.
  Catalog other;
  EXPECT_NE(other.version(), catalog.version());
}

TEST_F(QeCacheTest, QueryCacheInvalidatedByRedefinition) {
  SetMemoCachesEnabled(true);
  ConstraintDatabase db;
  ASSERT_TRUE(db.Define("S(x, y) := 4*x^2 - y - 20*x + 25 <= 0").ok());
  const std::string text = "exists y (S(x, y) and y <= 0)";
  StatusOr<CalcFResult> first = db.Query(text);
  ASSERT_TRUE(first.ok());
  StatusOr<CalcFResult> repeat = db.Query(text);  // query-cache hit
  ASSERT_TRUE(repeat.ok());
  EXPECT_EQ(first->relation.ToString({"x"}), repeat->relation.ToString({"x"}));
  // Redefine S: the version moved, so the stale entry must not answer.
  ASSERT_TRUE(db.Drop("S").ok());
  ASSERT_TRUE(db.Define("S(x, y) := x - y = 0").ok());
  StatusOr<CalcFResult> redefined = db.Query(text);
  ASSERT_TRUE(redefined.ok());
  EXPECT_NE(first->relation.ToString({"x"}),
            redefined->relation.ToString({"x"}));
  // And the fresh answer matches an uncached evaluation exactly.
  SetMemoCachesEnabled(false);
  StatusOr<CalcFResult> uncached = db.Query(text);
  ASSERT_TRUE(uncached.ok());
  EXPECT_EQ(redefined->relation.ToString({"x"}),
            uncached->relation.ToString({"x"}));
}

}  // namespace
}  // namespace ccdb
