#include "poly/root_isolation.h"

#include <random>

#include <gtest/gtest.h>

namespace ccdb {
namespace {

Rational R(std::int64_t n, std::int64_t d = 1) {
  return Rational(BigInt(n), BigInt(d));
}

UPoly FromInts(std::initializer_list<std::int64_t> coeffs) {
  std::vector<Rational> c;
  for (std::int64_t v : coeffs) c.emplace_back(BigInt(v));
  return UPoly(std::move(c));
}

TEST(RootIsolationTest, PaperExampleDoubleRoot) {
  // 4x^2 - 20x + 25 = (2x-5)^2: unique root 2.5, found exactly even though
  // the input is not squarefree.
  UPoly f = FromInts({25, -20, 4});
  auto roots = IsolateRealRoots(f);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_TRUE(roots[0].is_exact);
  EXPECT_EQ(roots[0].interval.lo(), R(5, 2));
}

TEST(RootIsolationTest, NoRealRoots) {
  EXPECT_TRUE(IsolateRealRoots(FromInts({1, 0, 1})).empty());   // x^2+1
  EXPECT_TRUE(IsolateRealRoots(FromInts({5})).empty());         // constant
}

TEST(RootIsolationTest, IntegerRootsExact) {
  // (x-1)(x-2)(x-3).
  UPoly f = FromInts({-1, 1}) * FromInts({-2, 1}) * FromInts({-3, 1});
  auto roots = IsolateRealRoots(f);
  ASSERT_EQ(roots.size(), 3u);
  // Sorted order; each either exact or isolating.
  std::vector<Rational> expected = {R(1), R(2), R(3)};
  for (std::size_t i = 0; i < roots.size(); ++i) {
    if (roots[i].is_exact) {
      EXPECT_EQ(roots[i].interval.lo(), expected[i]);
    } else {
      EXPECT_TRUE(roots[i].interval.Contains(expected[i]));
    }
  }
}

TEST(RootIsolationTest, IrrationalRootsIsolated) {
  // x^2 - 2: roots ±sqrt(2).
  UPoly f = FromInts({-2, 0, 1});
  auto roots = IsolateRealRoots(f);
  ASSERT_EQ(roots.size(), 2u);
  EXPECT_FALSE(roots[0].is_exact);
  EXPECT_FALSE(roots[1].is_exact);
  // Intervals are disjoint and correctly ordered.
  EXPECT_LE(roots[0].interval.hi(), roots[1].interval.lo());
  // sqrt(2) ~ 1.41421356 in the second interval.
  EXPECT_LT(roots[1].interval.lo(), R(141422, 100000));
  EXPECT_GT(roots[1].interval.hi(), R(141421, 100000));
}

TEST(RootIsolationTest, RefineRootShrinks) {
  UPoly f = FromInts({-2, 0, 1});
  auto roots = IsolateRealRoots(f);
  ASSERT_EQ(roots.size(), 2u);
  Rational eps(BigInt(1), BigInt::Pow2(40));
  IsolatedRoot refined = RefineRoot(f, roots[1], eps);
  EXPECT_LE(refined.interval.Width(), eps);
  // Still contains sqrt(2): f changes sign across it.
  EXPECT_LT(f.Evaluate(refined.interval.lo()) *
                f.Evaluate(refined.interval.hi()),
            R(0));
}

TEST(RootIsolationTest, ApproximateRealRootsTheorem32) {
  // The NUMERICAL EVALUATION step of the paper: eps-approximation of all
  // solutions.
  UPoly f = FromInts({-2, 0, 1});
  Rational eps(BigInt(1), BigInt(1000000));
  auto values = ApproximateRealRoots(f, eps);
  ASSERT_EQ(values.size(), 2u);
  double sqrt2 = 1.4142135623730951;
  EXPECT_NEAR(values[0].ToDouble(), -sqrt2, 1e-6);
  EXPECT_NEAR(values[1].ToDouble(), sqrt2, 1e-6);
}

TEST(RootIsolationTest, CloseRootsSeparated) {
  // (x - 1)(x - 1001/1000): two roots 0.001 apart.
  UPoly f = FromInts({-1, 1}) * UPoly({R(-1001, 1000), R(1)});
  auto roots = IsolateRealRoots(f);
  ASSERT_EQ(roots.size(), 2u);
  // Disjoint isolating intervals.
  EXPECT_LE(roots[0].interval.hi(), roots[1].interval.lo());
}

TEST(RootIsolationTest, WilkinsonStyleStress) {
  // prod_{i=1..8} (x - i): 8 well-separated integer roots with large
  // coefficients.
  UPoly f = UPoly::Constant(R(1));
  for (std::int64_t i = 1; i <= 8; ++i) f = f * FromInts({-i, 1});
  auto roots = IsolateRealRoots(f);
  ASSERT_EQ(roots.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    Rational expected(static_cast<std::int64_t>(i + 1));
    if (roots[i].is_exact) {
      EXPECT_EQ(roots[i].interval.lo(), expected);
    } else {
      EXPECT_TRUE(roots[i].interval.Contains(expected));
    }
  }
}

TEST(RootIsolationTest, RandomizedRootRecovery) {
  std::mt19937_64 rng(57);
  for (int trial = 0; trial < 40; ++trial) {
    // Random distinct integer roots.
    std::vector<std::int64_t> chosen;
    int count = 1 + static_cast<int>(rng() % 5);
    while (static_cast<int>(chosen.size()) < count) {
      std::int64_t r = static_cast<std::int64_t>(rng() % 21) - 10;
      bool duplicate = false;
      for (std::int64_t c : chosen) {
        if (c == r) duplicate = true;
      }
      if (!duplicate) chosen.push_back(r);
    }
    std::sort(chosen.begin(), chosen.end());
    UPoly f = UPoly::Constant(R(1));
    for (std::int64_t r : chosen) f = f * FromInts({-r, 1});
    auto roots = IsolateRealRoots(f);
    ASSERT_EQ(roots.size(), chosen.size());
    for (std::size_t i = 0; i < roots.size(); ++i) {
      Rational expected(chosen[i]);
      EXPECT_TRUE(roots[i].is_exact
                      ? roots[i].interval.lo() == expected
                      : roots[i].interval.Contains(expected))
          << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace ccdb
