#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/status.h"
#include "storage/catalog.h"

namespace ccdb {
namespace {

// Seeded-PRNG fuzzing of Catalog::Deserialize: every input — random bytes,
// truncations, duplicated lines, over-long lines, mutated valid catalogs —
// must come back as a clean Status, never a crash, abort, or hang. The
// durable store replays WAL payloads and checkpoint files through this
// entry point, so after a crash it can legitimately see anything.

constexpr std::uint64_t kSeed = 0xca7a109ull;

void ExpectDeserializeSurvives(const std::string& input) {
  auto catalog = Catalog::Deserialize(input);
  if (catalog.ok()) {
    // A successful parse must round-trip: serialize and re-parse to the
    // same text. This pins the "valid catalog" half of the contract.
    std::string text = catalog.value().Serialize();
    auto again = Catalog::Deserialize(text);
    ASSERT_TRUE(again.ok()) << "round-trip rejected its own serialization: "
                            << again.status().ToString();
    EXPECT_EQ(again.value().Serialize(), text);
  }
}

std::string ValidCatalogText() {
  Catalog catalog;
  EXPECT_TRUE(
      catalog.AddRelationFromText("S(x, y) := 4*x^2 - y - 20*x + 25 <= 0")
          .ok());
  EXPECT_TRUE(catalog.AddRelationFromText("Line(x, y) := x + y <= 3").ok());
  EXPECT_TRUE(catalog.AddRelationFromText("Box(x) := x <= 5 and x >= 0").ok());
  return catalog.Serialize();
}

TEST(CatalogFuzzTest, RandomBytes) {
  std::mt19937_64 rng(kSeed);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<int> length(0, 400);
  for (int round = 0; round < 500; ++round) {
    std::string input;
    int n = length(rng);
    input.reserve(n);
    for (int i = 0; i < n; ++i) input.push_back(static_cast<char>(byte(rng)));
    ExpectDeserializeSurvives(input);
  }
}

TEST(CatalogFuzzTest, TruncationsOfAValidCatalog) {
  const std::string valid = ValidCatalogText();
  for (std::size_t cut = 0; cut <= valid.size(); ++cut) {
    ExpectDeserializeSurvives(valid.substr(0, cut));
  }
}

TEST(CatalogFuzzTest, MutatedValidCatalogs) {
  const std::string valid = ValidCatalogText();
  std::mt19937_64 rng(kSeed + 1);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<int> mutations(1, 6);
  for (int round = 0; round < 1000; ++round) {
    std::string input = valid;
    int edits = mutations(rng);
    for (int e = 0; e < edits && !input.empty(); ++e) {
      std::uniform_int_distribution<std::size_t> at(0, input.size() - 1);
      switch (rng() % 4) {
        case 0:  // flip a byte
          input[at(rng)] = static_cast<char>(byte(rng));
          break;
        case 1:  // delete a byte
          input.erase(at(rng), 1);
          break;
        case 2:  // duplicate a chunk (may duplicate a relation line)
          input.insert(at(rng), input.substr(at(rng), 24));
          break;
        default:  // splice a newline, splitting a definition mid-token
          input.insert(at(rng), 1, '\n');
          break;
      }
    }
    ExpectDeserializeSurvives(input);
  }
}

TEST(CatalogFuzzTest, DuplicateRelationLinesAreRejected) {
  const std::string dup =
      "S(x) := x <= 1\n"
      "S(x) := x <= 2\n";
  auto catalog = Catalog::Deserialize(dup);
  ASSERT_FALSE(catalog.ok());
  EXPECT_NE(catalog.status().ToString().find("line 2"), std::string::npos)
      << catalog.status().ToString();
}

TEST(CatalogFuzzTest, OverLongLineIsRejectedNotBuffered) {
  // A line past the per-line cap must be rejected with a clean error, not
  // fed to the parser or allowed to balloon memory.
  std::string input = "S(x) := x ";
  input.append(2 * 1024 * 1024, ' ');
  input += "<= 1\n";
  auto catalog = Catalog::Deserialize(input);
  ASSERT_FALSE(catalog.ok());
  EXPECT_EQ(catalog.status().code(), StatusCode::kInvalidArgument);
}

TEST(CatalogFuzzTest, CommentAndBlankSoup) {
  std::mt19937_64 rng(kSeed + 2);
  std::uniform_int_distribution<int> byte(32, 126);
  for (int round = 0; round < 200; ++round) {
    std::string input;
    for (int line = 0; line < 20; ++line) {
      switch (rng() % 3) {
        case 0:
          input += "#";
          for (int i = 0; i < 10; ++i)
            input.push_back(static_cast<char>(byte(rng)));
          break;
        case 1:
          input += "   \t ";
          break;
        default:
          input += "R" + std::to_string(line) + "(x) := x <= " +
                   std::to_string(line);
          break;
      }
      input += '\n';
    }
    ExpectDeserializeSurvives(input);
  }
}

TEST(CatalogFuzzTest, ValidCatalogRoundTripsExactly) {
  const std::string valid = ValidCatalogText();
  auto catalog = Catalog::Deserialize(valid);
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
  EXPECT_EQ(catalog.value().Serialize(), valid);
  EXPECT_EQ(catalog.value().RelationNames().size(), 3u);
}

}  // namespace
}  // namespace ccdb
