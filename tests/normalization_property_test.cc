// Differential property tests for formula normalization: NNF, prenex form
// and DNF must preserve semantics. Random quantifier-free formulas are
// compared pointwise before and after each transformation; prenex matrices
// are compared against the original bodies under explicit witness
// substitution. Also covers variable shadowing in the surface-syntax
// lowering.

#include <random>

#include <gtest/gtest.h>

#include "constraint/formula.h"
#include "query/lower.h"
#include "qe/qe.h"
#include "query/parser.h"

namespace ccdb {
namespace {

Rational R(std::int64_t n, std::int64_t d = 1) {
  return Rational(BigInt(n), BigInt(d));
}

// Random quantifier-free formula over two variables with nested
// connectives and negations.
Formula RandomQfFormula(std::mt19937_64* rng, int depth) {
  if (depth == 0 || (*rng)() % 4 == 0) {
    std::uniform_int_distribution<std::int64_t> coeff(-3, 3);
    Polynomial p = Polynomial(coeff(*rng)) * Polynomial::Var(0) +
                   Polynomial(coeff(*rng)) * Polynomial::Var(1) +
                   Polynomial(coeff(*rng));
    RelOp ops[] = {RelOp::kLt, RelOp::kLe, RelOp::kEq,
                   RelOp::kNeq, RelOp::kGe, RelOp::kGt};
    return Formula::MakeAtom(Atom(p, ops[(*rng)() % 6]));
  }
  switch ((*rng)() % 3) {
    case 0:
      return Formula::Not(RandomQfFormula(rng, depth - 1));
    case 1:
      return Formula::And(RandomQfFormula(rng, depth - 1),
                          RandomQfFormula(rng, depth - 1));
    default:
      return Formula::Or(RandomQfFormula(rng, depth - 1),
                         RandomQfFormula(rng, depth - 1));
  }
}

class NormalizationPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(NormalizationPropertyTest, NnfPreservesTruthPointwise) {
  std::mt19937_64 rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    Formula f = RandomQfFormula(&rng, 3);
    Formula nnf = ToNnf(f);
    for (std::int64_t xi = -4; xi <= 4; ++xi) {
      for (std::int64_t yi = -4; yi <= 4; yi += 2) {
        std::vector<Rational> point{R(xi, 2), R(yi, 3)};
        EXPECT_EQ(f.EvaluateAt(point), nnf.EvaluateAt(point))
            << f.ToString({"x", "y"});
      }
    }
  }
}

TEST_P(NormalizationPropertyTest, DnfPreservesTruthPointwise) {
  std::mt19937_64 rng(500 + GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    Formula f = RandomQfFormula(&rng, 3);
    std::vector<GeneralizedTuple> dnf = ToDnf(f);
    for (std::int64_t xi = -4; xi <= 4; ++xi) {
      for (std::int64_t yi = -4; yi <= 4; yi += 2) {
        std::vector<Rational> point{R(xi, 2), R(yi, 3)};
        bool dnf_truth = false;
        for (const GeneralizedTuple& tuple : dnf) {
          if (tuple.SatisfiedAt(point)) {
            dnf_truth = true;
            break;
          }
        }
        EXPECT_EQ(f.EvaluateAt(point), dnf_truth) << f.ToString({"x", "y"});
      }
    }
  }
}

TEST_P(NormalizationPropertyTest, PrenexMatrixAgreesUnderWitnesses) {
  // exists z (body) where body mixes z into a random formula: the prenex
  // matrix with the fresh variable substituted by a witness w must equal
  // the original body with z := w.
  std::mt19937_64 rng(900 + GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    Formula body = RandomQfFormula(&rng, 2);
    // Inject the quantified variable 2 into the body.
    Formula with_z = Formula::And(
        body, Formula::MakeAtom(
                  Atom(Polynomial::Var(2) - Polynomial::Var(0), RelOp::kLe)));
    if (with_z.FreeVars().count(2) == 0) {
      // The random body folded to a constant and the conjunction dropped
      // the injected atom, so Exists elides the vacuous quantifier.
      continue;
    }
    Formula quantified = Formula::Exists(2, with_z);
    int fresh = 3;
    PrenexForm prenex = ToPrenex(quantified, &fresh);
    ASSERT_EQ(prenex.prefix.size(), 1u);
    int fresh_var = prenex.prefix[0].var;
    for (std::int64_t w = -2; w <= 2; ++w) {
      for (std::int64_t xi = -2; xi <= 2; ++xi) {
        std::vector<Rational> point(fresh_var + 1, R(0));
        point[0] = R(xi);
        point[1] = R(1, 2);
        point[fresh_var] = R(w);
        std::vector<Rational> original_point{R(xi), R(1, 2), R(w)};
        EXPECT_EQ(prenex.matrix.EvaluateAt(point),
                  with_z.EvaluateAt(original_point));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormalizationPropertyTest,
                         ::testing::Range(0, 6));

TEST(LoweringShadowingTest, InnerQuantifierShadowsOuterName) {
  // exists x (x <= 1 and exists x (x >= 5)): the two x's are different
  // variables; the sentence is satisfiable.
  auto parsed =
      ParseFormula("exists x (x <= 1 and exists x (x >= 5))");
  ASSERT_TRUE(parsed.ok());
  VarEnv env;
  auto lowered = LowerFormula(**parsed, &env);
  ASSERT_TRUE(lowered.ok());
  // Two distinct bound variables must appear.
  EXPECT_EQ(lowered->AllVars().size(), 2u);
  EXPECT_TRUE(lowered->FreeVars().empty());
}

TEST(LoweringShadowingTest, BoundNameRestoredAfterQuantifier) {
  // x free on the left; the quantifier on the right binds a DIFFERENT x;
  // afterwards the outer x refers to the free one again.
  auto parsed = ParseFormula("x <= 1 and exists x (x >= 5) and x >= 0");
  ASSERT_TRUE(parsed.ok());
  VarEnv env;
  auto lowered = LowerFormula(**parsed, &env);
  ASSERT_TRUE(lowered.ok());
  // Free variables: just the outer x (index 0).
  EXPECT_EQ(lowered->FreeVars(), (std::set<int>{0}));
  // Semantics: satisfiable with x in [0, 1].
  auto relation = EliminateQuantifiers(*lowered, 1);
  ASSERT_TRUE(relation.ok());
  EXPECT_TRUE(relation->Contains({R(1, 2)}));
  EXPECT_FALSE(relation->Contains({R(2)}));
  EXPECT_FALSE(relation->Contains({R(-1)}));
}

TEST(LoweringShadowingTest, RelationArgumentsExpandConstants) {
  // R(x, 3) lowers to exists fresh (fresh = 3 and R(x, fresh)).
  auto parsed = ParseFormula("R(x, 3)");
  ASSERT_TRUE(parsed.ok());
  VarEnv env;
  auto lowered = LowerFormula(**parsed, &env);
  ASSERT_TRUE(lowered.ok());
  EXPECT_EQ(lowered->kind(), Formula::Kind::kExists);
  EXPECT_TRUE(lowered->has_relation_symbols());
  EXPECT_EQ(lowered->FreeVars(), (std::set<int>{0}));
}

}  // namespace
}  // namespace ccdb
