// Seeded randomized differential suite for the small-value-optimized
// arithmetic kernels: every BigInt/Rational operation is checked against a
// naive always-limb reference implementation (RefInt below — the
// pre-inline sign-magnitude/32-bit-limb algorithms, with none of the
// word fast paths), with operand generators clustered at the inline/spill
// boundaries (0, ±1, ±2^31±1, ±2^32, ±2^63±1, INT64_MIN) and a round-trip
// property through string parsing. CCDB_PROPERTY_ITERS widens the sweeps.

#include <cstdint>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "arith/bigint.h"
#include "arith/rational.h"
#include "property_env.h"

namespace ccdb {
namespace {

// ---------------------------------------------------------------------------
// RefInt: naive always-limb reference. Deliberately has no inline word, no
// overflow-checked hardware ops, and no demotion — every value lives in a
// vector of 32-bit limbs, so a bug in the spill/normalize machinery of
// BigInt cannot also hide here.
// ---------------------------------------------------------------------------
struct RefInt {
  bool negative = false;
  std::vector<std::uint32_t> limbs;  // little-endian base 2^32, trimmed

  void Trim() {
    while (!limbs.empty() && limbs.back() == 0) limbs.pop_back();
    if (limbs.empty()) negative = false;
  }

  static RefInt FromInt64(std::int64_t value) {
    RefInt out;
    out.negative = value < 0;
    std::uint64_t magnitude = value < 0
                                  ? ~static_cast<std::uint64_t>(value) + 1
                                  : static_cast<std::uint64_t>(value);
    if (magnitude != 0) {
      out.limbs.push_back(static_cast<std::uint32_t>(magnitude & 0xffffffffu));
      std::uint32_t high = static_cast<std::uint32_t>(magnitude >> 32);
      if (high != 0) out.limbs.push_back(high);
    }
    return out;
  }

  static RefInt Pow2(std::uint64_t exponent) {
    RefInt out;
    out.limbs.assign(exponent / 32 + 1, 0);
    out.limbs.back() = 1u << (exponent % 32);
    return out;
  }

  bool IsZero() const { return limbs.empty(); }

  std::uint64_t BitLength() const {
    if (limbs.empty()) return 0;
    std::uint32_t top = limbs.back();
    std::uint64_t bits = static_cast<std::uint64_t>(limbs.size() - 1) * 32;
    while (top != 0) {
      ++bits;
      top >>= 1;
    }
    return bits;
  }

  bool FitsInt64() const {
    if (limbs.size() > 2) return false;
    if (limbs.size() < 2) return true;
    std::uint64_t magnitude =
        (static_cast<std::uint64_t>(limbs[1]) << 32) | limbs[0];
    if (negative) return magnitude <= (1ull << 63);
    return magnitude < (1ull << 63);
  }

  std::int64_t ToInt64() const {
    std::uint64_t magnitude = limbs.empty() ? 0 : limbs[0];
    if (limbs.size() == 2) {
      magnitude |= static_cast<std::uint64_t>(limbs[1]) << 32;
    }
    if (negative) return -static_cast<std::int64_t>(magnitude - 1) - 1;
    return static_cast<std::int64_t>(magnitude);
  }

  static int CompareMagnitude(const std::vector<std::uint32_t>& a,
                              const std::vector<std::uint32_t>& b) {
    if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
    for (std::size_t i = a.size(); i-- > 0;) {
      if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
    }
    return 0;
  }

  int Compare(const RefInt& other) const {
    if (negative != other.negative) return negative ? -1 : 1;
    int mag = CompareMagnitude(limbs, other.limbs);
    return negative ? -mag : mag;
  }

  static std::vector<std::uint32_t> AddMag(
      const std::vector<std::uint32_t>& a,
      const std::vector<std::uint32_t>& b) {
    const auto& hi = a.size() >= b.size() ? a : b;
    const auto& lo = a.size() >= b.size() ? b : a;
    std::vector<std::uint32_t> out;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < hi.size(); ++i) {
      std::uint64_t sum = carry + hi[i] + (i < lo.size() ? lo[i] : 0u);
      out.push_back(static_cast<std::uint32_t>(sum & 0xffffffffu));
      carry = sum >> 32;
    }
    if (carry != 0) out.push_back(static_cast<std::uint32_t>(carry));
    return out;
  }

  // Requires |a| >= |b|.
  static std::vector<std::uint32_t> SubMag(
      const std::vector<std::uint32_t>& a,
      const std::vector<std::uint32_t>& b) {
    std::vector<std::uint32_t> out;
    std::int64_t borrow = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      std::int64_t diff = static_cast<std::int64_t>(a[i]) - borrow -
                          (i < b.size() ? static_cast<std::int64_t>(b[i]) : 0);
      if (diff < 0) {
        diff += static_cast<std::int64_t>(1ll << 32);
        borrow = 1;
      } else {
        borrow = 0;
      }
      out.push_back(static_cast<std::uint32_t>(diff));
    }
    return out;
  }

  RefInt operator+(const RefInt& other) const {
    RefInt out;
    if (negative == other.negative) {
      out.negative = negative;
      out.limbs = AddMag(limbs, other.limbs);
    } else if (CompareMagnitude(limbs, other.limbs) >= 0) {
      out.negative = negative;
      out.limbs = SubMag(limbs, other.limbs);
    } else {
      out.negative = other.negative;
      out.limbs = SubMag(other.limbs, limbs);
    }
    out.Trim();
    return out;
  }

  RefInt Negated() const {
    RefInt out = *this;
    if (!out.IsZero()) out.negative = !out.negative;
    return out;
  }

  RefInt operator-(const RefInt& other) const { return *this + other.Negated(); }

  RefInt operator*(const RefInt& other) const {
    RefInt out;
    if (IsZero() || other.IsZero()) return out;
    out.negative = negative != other.negative;
    out.limbs.assign(limbs.size() + other.limbs.size(), 0);
    for (std::size_t i = 0; i < limbs.size(); ++i) {
      std::uint64_t carry = 0;
      for (std::size_t j = 0; j < other.limbs.size(); ++j) {
        std::uint64_t cur =
            out.limbs[i + j] +
            static_cast<std::uint64_t>(limbs[i]) * other.limbs[j] + carry;
        out.limbs[i + j] = static_cast<std::uint32_t>(cur & 0xffffffffu);
        carry = cur >> 32;
      }
      out.limbs[i + other.limbs.size()] += static_cast<std::uint32_t>(carry);
    }
    out.Trim();
    return out;
  }

  // Schoolbook bit-at-a-time long division on magnitudes: slow, but
  // structurally nothing like Knuth algorithm D, so the two cannot share a
  // bug. Truncated (C++) semantics.
  std::pair<RefInt, RefInt> DivMod(const RefInt& divisor) const {
    RefInt quotient, remainder;
    std::uint64_t bits = BitLength();
    for (std::uint64_t i = bits; i-- > 0;) {
      // remainder = remainder*2 + bit i of |this|.
      remainder = remainder + remainder;
      std::uint32_t bit = (limbs[i / 32] >> (i % 32)) & 1u;
      if (bit != 0) remainder = remainder + FromInt64(1);
      RefInt divisor_mag = divisor;
      divisor_mag.negative = false;
      if (remainder.Compare(divisor_mag) >= 0) {
        remainder = remainder - divisor_mag;
        // set bit i of the quotient.
        if (quotient.limbs.size() <= i / 32) {
          quotient.limbs.resize(i / 32 + 1, 0);
        }
        quotient.limbs[i / 32] |= 1u << (i % 32);
      }
    }
    quotient.Trim();
    remainder.Trim();
    if (!quotient.IsZero()) quotient.negative = negative != divisor.negative;
    if (!remainder.IsZero()) remainder.negative = negative;
    return {quotient, remainder};
  }

  static RefInt Gcd(RefInt a, RefInt b) {
    a.negative = false;
    b.negative = false;
    while (!b.IsZero()) {
      RefInt r = a.DivMod(b).second;
      a = b;
      b = r;
    }
    return a;
  }

  std::string ToString() const {
    if (limbs.empty()) return "0";
    std::vector<std::uint32_t> digits;
    std::vector<std::uint32_t> work = limbs;
    while (!work.empty()) {
      std::uint64_t rem = 0;
      for (std::size_t i = work.size(); i-- > 0;) {
        std::uint64_t cur = (rem << 32) | work[i];
        work[i] = static_cast<std::uint32_t>(cur / 1000000000u);
        rem = cur % 1000000000u;
      }
      digits.push_back(static_cast<std::uint32_t>(rem));
      while (!work.empty() && work.back() == 0) work.pop_back();
    }
    std::string out;
    if (negative) out.push_back('-');
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%u", digits.back());
    out += buf;
    for (std::size_t i = digits.size() - 1; i-- > 0;) {
      std::snprintf(buf, sizeof(buf), "%09u", digits[i]);
      out += buf;
    }
    return out;
  }
};

// One operand: the same mathematical value in both implementations, built
// without routing through the arithmetic under test (sign + raw limbs).
struct Operand {
  BigInt big;
  RefInt ref;
};

Operand MakeOperand(bool negative, const std::vector<std::uint32_t>& limbs) {
  Operand op;
  op.ref.negative = negative;
  op.ref.limbs = limbs;
  op.ref.Trim();
  // Assemble the BigInt limb-by-limb from 32-bit pieces; only +, *, and the
  // int64 constructor are involved, and those are cross-checked by every
  // other assertion in the suite.
  BigInt magnitude;
  BigInt base = BigInt(1ll << 32);
  for (std::size_t i = limbs.size(); i-- > 0;) {
    magnitude = magnitude * base + BigInt(static_cast<std::int64_t>(limbs[i]));
  }
  op.big = negative ? -magnitude : magnitude;
  return op;
}

Operand MakeOperand(std::int64_t value) {
  Operand op;
  op.big = BigInt(value);
  op.ref = RefInt::FromInt64(value);
  return op;
}

// Operand generator clustered at the inline/spill boundaries, with random
// word-sized and random multi-limb values mixed in.
class OperandGen {
 public:
  explicit OperandGen(std::uint64_t seed) : rng_(seed) {}

  Operand Next() {
    switch (rng_() % 8) {
      case 0:
      case 1: {  // boundary special values
        static const std::int64_t kSpecials[] = {
            0, 1, -1, 2, -2,
            (1ll << 31) - 1, (1ll << 31), (1ll << 31) + 1,
            -(1ll << 31) + 1, -(1ll << 31), -(1ll << 31) - 1,
            (1ll << 32) - 1, (1ll << 32), (1ll << 32) + 1,
            -(1ll << 32), (1ll << 62), -(1ll << 62),
            INT64_MAX - 1, INT64_MAX, INT64_MIN + 1, INT64_MIN};
        return MakeOperand(kSpecials[rng_() % (sizeof(kSpecials) /
                                               sizeof(kSpecials[0]))]);
      }
      case 2: {  // straddle the word/limb boundary: ±(2^63 ± d), ±(2^64 ± d)
        unsigned __int128 base = (rng_() & 1) != 0
                                     ? static_cast<unsigned __int128>(1) << 63
                                     : static_cast<unsigned __int128>(1) << 64;
        unsigned __int128 delta = rng_() % 3;
        unsigned __int128 magnitude =
            (rng_() & 1) != 0 ? base + delta : base - delta;
        std::vector<std::uint32_t> limbs;
        while (magnitude != 0) {
          limbs.push_back(
              static_cast<std::uint32_t>(magnitude & 0xffffffffu));
          magnitude >>= 32;
        }
        return MakeOperand((rng_() & 1) != 0, limbs);
      }
      case 3:  // random word-sized
        return MakeOperand(static_cast<std::int64_t>(rng_()));
      case 4:  // random small word
        return MakeOperand(static_cast<std::int64_t>(rng_() % 2001) - 1000);
      default: {  // random multi-limb (2..5 limbs, genuinely spilled)
        std::size_t n = 2 + rng_() % 4;
        std::vector<std::uint32_t> limbs;
        for (std::size_t i = 0; i < n; ++i) {
          limbs.push_back(static_cast<std::uint32_t>(rng_()));
        }
        return MakeOperand((rng_() & 1) != 0, limbs);
      }
    }
  }

 private:
  std::mt19937_64 rng_;
};

void ExpectAgree(const BigInt& got, const RefInt& want, const char* what) {
  EXPECT_EQ(got.ToString(), want.ToString()) << what;
  EXPECT_EQ(got.bit_length(), want.BitLength()) << what;
  EXPECT_EQ(got.is_negative(), want.negative) << what;
  EXPECT_EQ(got.is_zero(), want.IsZero()) << what;
  EXPECT_EQ(got.FitsInt64(), want.FitsInt64()) << what << " FitsInt64";
  if (want.FitsInt64()) {
    EXPECT_EQ(got.ToInt64(), want.ToInt64()) << what << " ToInt64";
  }
}

class BigIntDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(BigIntDifferentialTest, EveryOperationMatchesLimbReference) {
  OperandGen gen(static_cast<std::uint64_t>(GetParam()));
  const int iters = 150 * ccdb_test::PropertyIterScale();
  for (int trial = 0; trial < iters; ++trial) {
    Operand a = gen.Next();
    Operand b = gen.Next();
    SCOPED_TRACE("a=" + a.ref.ToString() + " b=" + b.ref.ToString());

    ExpectAgree(a.big, a.ref, "operand a");
    ExpectAgree(a.big + b.big, a.ref + b.ref, "add");
    ExpectAgree(a.big - b.big, a.ref - b.ref, "sub");
    ExpectAgree(a.big * b.big, a.ref * b.ref, "mul");
    ExpectAgree(-a.big, a.ref.Negated(), "neg");
    {
      RefInt abs = a.ref;
      abs.negative = false;
      ExpectAgree(a.big.Abs(), abs, "abs");
    }
    if (!b.ref.IsZero()) {
      auto [q, r] = a.big.DivMod(b.big);
      auto [rq, rr] = a.ref.DivMod(b.ref);
      ExpectAgree(q, rq, "quotient");
      ExpectAgree(r, rr, "remainder");
      ExpectAgree(a.big / b.big, rq, "operator/");
      ExpectAgree(a.big % b.big, rr, "operator%");
    }
    ExpectAgree(BigInt::Gcd(a.big, b.big), RefInt::Gcd(a.ref, b.ref), "gcd");
    EXPECT_EQ(a.big.Compare(b.big), a.ref.Compare(b.ref)) << "compare";
    EXPECT_EQ(a.big == b.big, a.ref.Compare(b.ref) == 0) << "equality";
    EXPECT_EQ(a.big.IsEven(),
              a.ref.limbs.empty() || (a.ref.limbs[0] & 1u) == 0)
        << "even";

    // Round-trip through string parsing.
    auto reparsed = BigInt::FromString(a.big.ToString());
    ASSERT_TRUE(reparsed.ok());
    EXPECT_EQ(*reparsed, a.big) << "string round trip";
    EXPECT_EQ(reparsed->Hash(), a.big.Hash()) << "hash round trip";

    // Shifts vs multiplication/division by 2^s in the reference.
    std::uint64_t shift = static_cast<std::uint64_t>(trial) % 97;
    ExpectAgree(a.big.ShiftLeft(shift), a.ref * RefInt::Pow2(shift),
                "shift left");
    {
      RefInt magnitude = a.ref;
      magnitude.negative = false;
      RefInt shifted = magnitude.DivMod(RefInt::Pow2(shift)).first;
      if (!shifted.IsZero()) shifted.negative = a.ref.negative;
      ExpectAgree(a.big.ShiftRight(shift), shifted, "shift right");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntDifferentialTest,
                         ::testing::Range(1000, 1008));

TEST(BigIntDifferentialTest, Pow2MatchesReference) {
  for (std::uint64_t e = 0; e <= 200; ++e) {
    ExpectAgree(BigInt::Pow2(e), RefInt::Pow2(e), "pow2");
    EXPECT_EQ(BigInt::Pow2(e).bit_length(), e + 1);
  }
}

TEST(BigIntDifferentialTest, PowMatchesRepeatedReferenceMultiplication) {
  OperandGen gen(424242);
  for (int trial = 0; trial < 40 * ccdb_test::PropertyIterScale(); ++trial) {
    Operand a = gen.Next();
    std::uint32_t e = static_cast<std::uint32_t>(trial % 7);
    RefInt expected = RefInt::FromInt64(1);
    for (std::uint32_t i = 0; i < e; ++i) expected = expected * a.ref;
    ExpectAgree(a.big.Pow(e), expected, "pow");
  }
}

// ---------------------------------------------------------------------------
// Rational differential: expected numerator/denominator computed with the
// RefInt formulas (naive cross products + reference gcd reduction), so none
// of Rational's word/__int128 fast paths or gcd-skipping tricks are trusted.
// ---------------------------------------------------------------------------
struct RefRational {
  RefInt num;
  RefInt den;  // positive

  static RefRational Make(RefInt n, RefInt d) {
    RefRational out;
    if (d.negative) {
      n = n.Negated();
      d.negative = false;
    }
    if (n.IsZero()) {
      out.num = RefInt();
      out.den = RefInt::FromInt64(1);
      return out;
    }
    RefInt g = RefInt::Gcd(n, d);
    bool negative = n.negative;
    n.negative = false;
    out.num = n.DivMod(g).first;
    if (negative) out.num.negative = true;
    out.den = d.DivMod(g).first;
    return out;
  }
};

void ExpectAgree(const Rational& got, const RefRational& want,
                 const char* what) {
  EXPECT_EQ(got.numerator().ToString(), want.num.ToString()) << what;
  EXPECT_EQ(got.denominator().ToString(), want.den.ToString()) << what;
  EXPECT_EQ(got.bit_length(),
            std::max(want.num.BitLength(), want.den.BitLength()))
      << what << " bit_length";
}

class RationalDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(RationalDifferentialTest, EveryOperationMatchesLimbReference) {
  OperandGen gen(static_cast<std::uint64_t>(GetParam()) * 7919);
  const int iters = 60 * ccdb_test::PropertyIterScale();
  for (int trial = 0; trial < iters; ++trial) {
    Operand an = gen.Next();
    Operand ad = gen.Next();
    Operand bn = gen.Next();
    Operand bd = gen.Next();
    if (ad.ref.IsZero() || bd.ref.IsZero()) continue;
    Rational a(an.big, ad.big);
    Rational b(bn.big, bd.big);
    RefRational ra = RefRational::Make(an.ref, ad.ref);
    RefRational rb = RefRational::Make(bn.ref, bd.ref);
    SCOPED_TRACE("a=" + a.ToString() + " b=" + b.ToString());

    // Construction itself (canonicalization) agrees.
    ExpectAgree(a, ra, "construct");

    // a op b via naive cross products reduced by the reference gcd.
    RefInt cross_den = ra.den * rb.den;
    ExpectAgree(a + b,
                RefRational::Make(ra.num * rb.den + rb.num * ra.den,
                                  cross_den),
                "add");
    ExpectAgree(a - b,
                RefRational::Make(ra.num * rb.den - rb.num * ra.den,
                                  cross_den),
                "sub");
    ExpectAgree(a * b, RefRational::Make(ra.num * rb.num, cross_den), "mul");
    if (!b.is_zero()) {
      ExpectAgree(a / b, RefRational::Make(ra.num * rb.den, ra.den * rb.num),
                  "div");
    }

    // Compare via reference cross multiplication.
    EXPECT_EQ(a.Compare(b),
              (ra.num * rb.den).Compare(rb.num * ra.den))
        << "compare";

    // Round-trip through "num/den" string parsing.
    auto reparsed = Rational::FromString(a.ToString());
    ASSERT_TRUE(reparsed.ok());
    EXPECT_EQ(*reparsed, a) << "string round trip";
    EXPECT_EQ(reparsed->Hash(), a.Hash()) << "hash round trip";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RationalDifferentialTest,
                         ::testing::Range(2000, 2006));

}  // namespace
}  // namespace ccdb
