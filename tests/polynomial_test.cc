#include "poly/polynomial.h"

#include <random>

#include <gtest/gtest.h>

namespace ccdb {
namespace {

Rational R(std::int64_t n, std::int64_t d = 1) {
  return Rational(BigInt(n), BigInt(d));
}

// The paper's running example: S(x,y) uses p = 4x^2 - y - 20x + 25.
Polynomial PaperPoly() {
  Polynomial x = Polynomial::Var(0);
  Polynomial y = Polynomial::Var(1);
  return Polynomial(4) * x * x - y - Polynomial(20) * x + Polynomial(25);
}

TEST(MonomialTest, Basics) {
  Monomial one;
  EXPECT_TRUE(one.is_one());
  EXPECT_EQ(one.total_degree(), 0u);
  EXPECT_EQ(one.max_var(), -1);

  Monomial x2 = Monomial::Var(0, 2);
  Monomial y = Monomial::Var(1);
  Monomial x2y = x2 * y;
  EXPECT_EQ(x2y.exponent(0), 2u);
  EXPECT_EQ(x2y.exponent(1), 1u);
  EXPECT_EQ(x2y.exponent(5), 0u);
  EXPECT_EQ(x2y.total_degree(), 3u);
  EXPECT_EQ(x2y.max_var(), 1);
}

TEST(MonomialTest, DivideAndDivides) {
  Monomial x2y = Monomial::Var(0, 2) * Monomial::Var(1);
  Monomial x = Monomial::Var(0);
  EXPECT_TRUE(x.Divides(x2y));
  EXPECT_FALSE(x2y.Divides(x));
  auto q = x2y.Divide(x);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->exponent(0), 1u);
  EXPECT_EQ(q->exponent(1), 1u);
  EXPECT_FALSE(x.Divide(x2y).ok());
}

TEST(MonomialTest, LexOrderHighVarSignificant) {
  Monomial x = Monomial::Var(0);
  Monomial y = Monomial::Var(1);
  EXPECT_TRUE(x < y);            // y dominates
  EXPECT_TRUE(Monomial() < x);   // 1 < x
  EXPECT_TRUE(x < x * x);
  EXPECT_TRUE(x * x < y);        // any x-power below y
}

TEST(PolynomialTest, ConstructionAndQueries) {
  Polynomial p = PaperPoly();
  EXPECT_FALSE(p.is_zero());
  EXPECT_FALSE(p.is_constant());
  EXPECT_EQ(p.max_var(), 1);
  EXPECT_EQ(p.DegreeIn(0), 2u);
  EXPECT_EQ(p.DegreeIn(1), 1u);
  EXPECT_EQ(p.TotalDegree(), 2u);
  EXPECT_EQ(p.term_count(), 4u);
  EXPECT_TRUE(p.Mentions(0));
  EXPECT_TRUE(p.Mentions(1));
  EXPECT_FALSE(p.Mentions(2));
}

TEST(PolynomialTest, EvaluatePaperExample) {
  // Point (2.5, 0) satisfies 4x^2 - y - 20x + 25 = 0.
  Polynomial p = PaperPoly();
  EXPECT_EQ(p.Evaluate({R(5, 2), R(0)}), R(0));
  // S contains (2.5, 0); p(0,0) = 25 > 0, p(2.5, 9) = -9.
  EXPECT_EQ(p.Evaluate({R(0), R(0)}), R(25));
  EXPECT_EQ(p.Evaluate({R(5, 2), R(9)}), R(-9));
}

TEST(PolynomialTest, ArithmeticRingAxiomsRandom) {
  std::mt19937_64 rng(31);
  std::uniform_int_distribution<std::int64_t> dist(-5, 5);
  auto random_poly = [&]() {
    Polynomial p;
    for (int t = 0; t < 4; ++t) {
      Monomial m = Monomial::Var(0, rng() % 3) * Monomial::Var(1, rng() % 3);
      p += Polynomial::Term(R(dist(rng)), m);
    }
    return p;
  };
  for (int i = 0; i < 100; ++i) {
    Polynomial a = random_poly();
    Polynomial b = random_poly();
    Polynomial c = random_poly();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) * c, a * c + b * c);
    EXPECT_EQ(a - a, Polynomial());
    EXPECT_EQ(a * Polynomial(1), a);
    EXPECT_EQ(a * Polynomial(), Polynomial());
    // Evaluation is a ring homomorphism.
    std::vector<Rational> point{R(dist(rng)), R(dist(rng))};
    EXPECT_EQ((a * b).Evaluate(point),
              a.Evaluate(point) * b.Evaluate(point));
    EXPECT_EQ((a + b).Evaluate(point),
              a.Evaluate(point) + b.Evaluate(point));
  }
}

TEST(PolynomialTest, Derivative) {
  Polynomial p = PaperPoly();
  Polynomial dx = p.Derivative(0);  // 8x - 20
  EXPECT_EQ(dx, Polynomial(8) * Polynomial::Var(0) - Polynomial(20));
  Polynomial dy = p.Derivative(1);  // -1
  EXPECT_EQ(dy, Polynomial(-1));
  EXPECT_EQ(p.Derivative(2), Polynomial());
  // d/dx (x^3) = 3x^2.
  Polynomial x3 = Polynomial::Var(0).Pow(3);
  EXPECT_EQ(x3.Derivative(0), Polynomial(3) * Polynomial::Var(0).Pow(2));
}

TEST(PolynomialTest, SubstituteReducesVariable) {
  Polynomial p = PaperPoly();
  Polynomial at_y0 = p.Substitute(1, R(0));  // 4x^2 - 20x + 25
  EXPECT_EQ(at_y0.max_var(), 0);
  EXPECT_EQ(at_y0.Evaluate({R(5, 2)}), R(0));
  Polynomial at_x = p.Substitute(0, R(5, 2));  // -y
  EXPECT_EQ(at_x, -Polynomial::Var(1));
}

TEST(PolynomialTest, SubstitutePolyComposition) {
  // p(x) = x^2; x := y + 1 gives y^2 + 2y + 1.
  Polynomial p = Polynomial::Var(0).Pow(2);
  Polynomial composed = p.SubstitutePoly(0, Polynomial::Var(1) + Polynomial(1));
  Polynomial y = Polynomial::Var(1);
  EXPECT_EQ(composed, y * y + Polynomial(2) * y + Polynomial(1));
}

TEST(PolynomialTest, RenameVars) {
  Polynomial p = PaperPoly();  // vars 0,1
  Polynomial renamed = p.RenameVars({2, 0});
  EXPECT_EQ(renamed.DegreeIn(2), 2u);
  EXPECT_EQ(renamed.DegreeIn(0), 1u);
  EXPECT_EQ(renamed.Evaluate({R(0), R(0), R(5, 2)}), R(0));
}

TEST(PolynomialTest, CoefficientsInRoundTrip) {
  Polynomial p = PaperPoly();
  auto coeffs = p.CoefficientsIn(0);
  ASSERT_EQ(coeffs.size(), 3u);
  EXPECT_EQ(coeffs[2], Polynomial(4));
  EXPECT_EQ(coeffs[1], Polynomial(-20));
  EXPECT_EQ(coeffs[0], Polynomial(25) - Polynomial::Var(1));
  EXPECT_EQ(Polynomial::FromCoefficientsIn(0, coeffs), p);

  auto ycoeffs = p.CoefficientsIn(1);
  ASSERT_EQ(ycoeffs.size(), 2u);
  EXPECT_EQ(ycoeffs[1], Polynomial(-1));
  EXPECT_EQ(Polynomial::FromCoefficientsIn(1, ycoeffs), p);
}

TEST(PolynomialTest, LeadingCoefficient) {
  Polynomial p = PaperPoly();
  EXPECT_EQ(p.LeadingCoefficientIn(0), Polynomial(4));
  EXPECT_EQ(p.LeadingCoefficientIn(1), Polynomial(-1));
}

TEST(PolynomialTest, IntegerNormalized) {
  Polynomial p = Polynomial::Term(R(2, 3), Monomial::Var(0)) +
                 Polynomial::Term(R(4, 9), Monomial());
  Rational factor;
  Polynomial n = p.IntegerNormalized(&factor);
  // (2/3)x + 4/9 = (2/9)(3x + 2).
  EXPECT_EQ(n, Polynomial(3) * Polynomial::Var(0) + Polynomial(2));
  EXPECT_EQ(factor, R(2, 9));
  EXPECT_EQ(n.Scale(factor), p);

  // Leading coefficient made positive.
  Polynomial negative = Polynomial(-2) * Polynomial::Var(0) + Polynomial(4);
  Polynomial nn = negative.IntegerNormalized(&factor);
  EXPECT_EQ(nn, Polynomial::Var(0) - Polynomial(2));
  EXPECT_EQ(factor, R(-2));
}

TEST(PolynomialTest, IntervalEvaluationEnclosesPointValues) {
  Polynomial p = PaperPoly();
  std::vector<Interval> box{Interval(R(1), R(4)), Interval(R(0), R(9))};
  Interval enclosure = p.EvaluateInterval(box);
  for (std::int64_t xi = 1; xi <= 4; ++xi) {
    for (std::int64_t yi = 0; yi <= 9; yi += 3) {
      Rational value = p.Evaluate({R(xi), R(yi)});
      EXPECT_TRUE(enclosure.Contains(value))
          << "p(" << xi << "," << yi << ") = " << value.ToString();
    }
  }
}

TEST(PolynomialTest, MaxCoefficientBitLength) {
  Polynomial p = PaperPoly();
  EXPECT_EQ(p.MaxCoefficientBitLength(), 5u);  // 25 has 5 bits
  EXPECT_EQ(Polynomial().MaxCoefficientBitLength(), 0u);
}

TEST(PolynomialTest, ToStringReadable) {
  EXPECT_EQ(PaperPoly().ToString({"x", "y"}), "-y + 4*x^2 - 20*x + 25");
  EXPECT_EQ(Polynomial().ToString(), "0");
  EXPECT_EQ(Polynomial(-3).ToString(), "-3");
  EXPECT_EQ((Polynomial::Var(0) - Polynomial(1)).ToString(), "x0 - 1");
}

TEST(PolynomialTest, DeterministicOrdering) {
  Polynomial a = Polynomial::Var(0);
  Polynomial b = Polynomial::Var(1);
  EXPECT_TRUE(a < b || b < a);
  EXPECT_FALSE(a < a);
  Polynomial c = a + Polynomial(1);
  EXPECT_TRUE((a < c) != (c < a));
}

}  // namespace
}  // namespace ccdb
