#include "fp/fp_semantics.h"

#include <gtest/gtest.h>

namespace ccdb {
namespace {

Rational R(std::int64_t n, std::int64_t d = 1) {
  return Rational(BigInt(n), BigInt(d));
}

Polynomial X() { return Polynomial::Var(0); }
Polynomial Y() { return Polynomial::Var(1); }

TEST(FpSemanticsTest, DefinedWhenBudgetSuffices) {
  // Small linear query, generous k.
  Formula query = Formula::Exists(
      1, Formula::And(Formula::Compare(X(), RelOp::kLe, Y()),
                      Formula::Compare(Y(), RelOp::kLe, Polynomial(10))));
  FpQeStats stats;
  auto result = EliminateQuantifiersFp(query, 1, FpContext{64}, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(stats.defined);
  EXPECT_LE(stats.max_bits, 64u);
  EXPECT_TRUE(result->Contains({R(10)}));
}

TEST(FpSemanticsTest, UndefinedWhenBudgetTooSmall) {
  // Multiplicative query with large coefficients: exceed a tiny budget.
  Polynomial big = Polynomial(1 << 20) * X().Pow(2) - Y();
  Formula query = Formula::Exists(
      1, Formula::And(Formula::MakeAtom(Atom(big, RelOp::kEq)),
                      Formula::MakeAtom(Atom(Y() - Polynomial(3), RelOp::kEq))));
  FpQeStats stats;
  auto result = EliminateQuantifiersFp(query, 1, FpContext{4}, &stats);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUndefined);
  EXPECT_FALSE(stats.defined);
  EXPECT_GT(stats.max_bits, 4u);
}

TEST(FpSemanticsTest, Theorem41SeparationPolynomialBitGrowth) {
  // Theorem 4.1's engine: with multiplication, the QE algorithm needs
  // integers polynomially larger than the input. Squaring a coefficient
  // doubles its bit length: exists y (y = c*x*x and y*... keep simple:
  // the resultant of (y - c x^2, y - c) forces c^2-scale numbers.
  std::int64_t c = 100;  // 7 bits
  Formula query = Formula::Exists(
      1,
      Formula::And(
          Formula::MakeAtom(
              Atom(Y() - Polynomial(c) * X().Pow(2), RelOp::kEq)),
          Formula::MakeAtom(
              Atom(Y().Pow(2) - Polynomial(97), RelOp::kEq))));
  FpQeStats stats;
  auto exact = EliminateQuantifiersFp(query, 1, FpContext{1 << 20}, &stats);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  // Input coefficients fit in 7 bits; intermediates need strictly more.
  EXPECT_GT(stats.max_bits, 7u);
}

TEST(FpSemanticsTest, Theorem42LinearBitGrowthLinear) {
  // For linear queries the growth is a constant factor (Lemma 4.4 linear
  // case): check max_bits <= c * input_bits for growing input bit lengths,
  // with a stable small c.
  for (int shift = 4; shift <= 24; shift += 10) {
    std::int64_t coeff = (1ll << shift) - 1;  // shift bits
    Formula query = Formula::Exists(
        1, Formula::And(
               Formula::Compare(Polynomial(coeff) * X(), RelOp::kLe, Y()),
               Formula::Compare(Y(), RelOp::kLe, Polynomial(coeff))));
    FpQeStats stats;
    auto result =
        EliminateQuantifiersFp(query, 1, FpContext{1 << 20}, &stats);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(stats.qe.used_linear_path);
    EXPECT_LE(stats.max_bits, static_cast<std::uint64_t>(3 * shift + 8))
        << "input bits " << shift;
  }
}

TEST(FpSemanticsTest, DecideSentenceFp) {
  Formula sentence = Formula::Exists(
      0, Formula::MakeAtom(Atom(X() - Polynomial(3), RelOp::kEq)));
  auto truth = DecideSentenceFp(sentence, FpContext{64});
  ASSERT_TRUE(truth.ok());
  EXPECT_TRUE(*truth);
}

TEST(FpSemanticsTest, MinimalDefiningK) {
  Formula query = Formula::Exists(
      1, Formula::And(Formula::Compare(Polynomial(255) * X(), RelOp::kLe, Y()),
                      Formula::Compare(Y(), RelOp::kLe, Polynomial(255))));
  auto k = MinimalDefiningK(query, 1, 1 << 16);
  ASSERT_TRUE(k.ok()) << k.status().ToString();
  EXPECT_GE(*k, 8u);
  EXPECT_LE(*k, 64u);
  // The query is then defined at exactly that k and undefined below.
  FpQeStats stats;
  EXPECT_TRUE(EliminateQuantifiersFp(query, 1, FpContext{*k}, &stats).ok());
  if (*k > 1) {
    auto below = EliminateQuantifiersFp(query, 1, FpContext{*k - 1}, &stats);
    EXPECT_FALSE(below.ok());
  }
}

TEST(FpSemanticsTest, PartialityIsMonotoneInK) {
  // If defined at k, defined at every k' >= k (same pipeline, same bits).
  Polynomial p = Polynomial(12345) * X().Pow(2) - Y();
  Formula query = Formula::Exists(
      1, Formula::MakeAtom(Atom(p, RelOp::kEq)));
  auto k = MinimalDefiningK(query, 1, 1 << 16);
  ASSERT_TRUE(k.ok());
  for (std::uint32_t extra : {0u, 1u, 10u, 100u}) {
    FpQeStats stats;
    EXPECT_TRUE(
        EliminateQuantifiersFp(query, 1, FpContext{*k + extra}, &stats).ok());
  }
}

}  // namespace
}  // namespace ccdb
