// Differential determinism test for the parallel engine: every pipeline
// stage that fans out over a thread pool (per-disjunct QE, CAD lifting,
// cell-truth evaluation, per-rule Datalog rounds) must produce the same
// normalized output formula and the same QeStats at threads = 1, 2, 8.
// The serial path (threads = 1) runs the pre-pool inline code, so these
// tests also pin the parallel merge order to the historical serial order.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "base/thread_pool.h"
#include "constraint/atom.h"
#include "constraint/formula.h"
#include "datalog/datalog.h"
#include "qe/qe.h"

namespace ccdb {
namespace {

const int kThreadCounts[] = {1, 2, 8};

Polynomial V(int i) { return Polynomial::Var(i); }

// exists y: union of m translated parabola bands (x - k)^2 <= y <= k.
// All-existential prefix over a top-level disjunction: exercises the
// disjunct split, one small CAD per disjunct.
Formula ParabolaBands(int disjuncts) {
  std::vector<Formula> bands;
  for (int k = 1; k <= disjuncts; ++k) {
    Polynomial shifted = (V(0) - Polynomial(k)) * (V(0) - Polynomial(k));
    bands.push_back(
        Formula::And(Formula::Compare(shifted, RelOp::kLe, V(1)),
                     Formula::Compare(V(1), RelOp::kLe, Polynomial(k))));
  }
  return Formula::Exists(1, Formula::Or(bands));
}

// Linear multi-disjunct exists: the Fourier-Motzkin per-disjunct fan-out.
Formula LinearBands(int disjuncts) {
  std::vector<Formula> bands;
  for (int k = 0; k < disjuncts; ++k) {
    bands.push_back(Formula::And(
        {Formula::Compare(Polynomial(k), RelOp::kLe, V(1)),
         Formula::Compare(V(1), RelOp::kLe, Polynomial(k + 1)),
         Formula::Compare(V(0) - V(1), RelOp::kLe, Polynomial(k)),
         Formula::Compare(-V(0) - V(1), RelOp::kLe, Polynomial(k))}));
  }
  return Formula::Exists(1, Formula::Or(bands));
}

// Nonlinear forall: forall y (y^2 + x >= 0), i.e. x >= 0. Pure CAD path
// with negation — no disjunct split applies.
Formula NonlinearForall() {
  return Formula::Forall(
      1, Formula::Compare(V(1) * V(1) + V(0), RelOp::kGe, Polynomial(0)));
}

struct QeRun {
  std::string relation;
  std::string stats;
};

QeRun RunQe(const Formula& formula, int num_free_vars, int threads) {
  ThreadPool pool(threads);
  QeOptions options;
  options.pool = &pool;
  QeStats stats;
  auto result = EliminateQuantifiers(formula, num_free_vars, options, &stats);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  QeRun run;
  if (result.ok()) run.relation = result->ToString();
  run.stats = stats.ToJson();
  return run;
}

void ExpectIdenticalAcrossThreadCounts(const Formula& formula,
                                       int num_free_vars) {
  QeRun baseline = RunQe(formula, num_free_vars, 1);
  EXPECT_FALSE(baseline.relation.empty());
  for (int threads : kThreadCounts) {
    QeRun run = RunQe(formula, num_free_vars, threads);
    EXPECT_EQ(run.relation, baseline.relation) << "threads " << threads;
    EXPECT_EQ(run.stats, baseline.stats) << "threads " << threads;
  }
}

TEST(ParallelDeterminismTest, LinearMultiDisjunctExists) {
  ExpectIdenticalAcrossThreadCounts(LinearBands(9), 1);
}

TEST(ParallelDeterminismTest, NonlinearDisjunctSplit) {
  ExpectIdenticalAcrossThreadCounts(ParabolaBands(6), 1);
}

TEST(ParallelDeterminismTest, NonlinearJointCad) {
  // Split disabled: the whole union goes through one joint CAD, so the
  // base/lifting fan-out itself is what must stay deterministic.
  Formula formula = ParabolaBands(3);
  auto run = [&](int threads) {
    ThreadPool pool(threads);
    QeOptions options;
    options.pool = &pool;
    options.allow_disjunct_split = false;
    QeStats stats;
    auto result = EliminateQuantifiers(formula, 1, options, &stats);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return QeRun{result.ok() ? result->ToString() : "", stats.ToJson()};
  };
  QeRun baseline = run(1);
  for (int threads : kThreadCounts) {
    QeRun parallel = run(threads);
    EXPECT_EQ(parallel.relation, baseline.relation) << "threads " << threads;
    EXPECT_EQ(parallel.stats, baseline.stats) << "threads " << threads;
  }
}

TEST(ParallelDeterminismTest, NonlinearForallNegationPath) {
  ExpectIdenticalAcrossThreadCounts(NonlinearForall(), 1);
}

TEST(ParallelDeterminismTest, TwoFreeVariableUnion) {
  // Free variables x, y; eliminate z from a union mixing linear and
  // quadratic constraints on all three.
  std::vector<Formula> disjuncts;
  for (int k = 1; k <= 4; ++k) {
    disjuncts.push_back(Formula::And(
        {Formula::Compare(V(2) * V(2), RelOp::kLe,
                          V(0) + Polynomial(k)),
         Formula::Compare(V(1), RelOp::kLe, V(2) + Polynomial(k)),
         Formula::Compare(-V(2), RelOp::kLe, Polynomial(k))}));
  }
  ExpectIdenticalAcrossThreadCounts(
      Formula::Exists(2, Formula::Or(disjuncts)), 2);
}

TEST(ParallelDeterminismTest, SentenceDecision) {
  // exists x: x^2 < -1 is false; exists x: x^2 - 2 = 0 is true. The
  // decision and the stats must not vary with the pool.
  Formula unsat = Formula::Exists(
      0, Formula::Compare(V(0) * V(0), RelOp::kLt, Polynomial(-1)));
  Formula sat = Formula::Exists(
      0, Formula::Compare(V(0) * V(0) - Polynomial(2), RelOp::kEq,
                          Polynomial(0)));
  for (int threads : kThreadCounts) {
    ThreadPool pool(threads);
    QeOptions options;
    options.pool = &pool;
    auto unsat_verdict = DecideSentence(unsat, options);
    auto sat_verdict = DecideSentence(sat, options);
    ASSERT_TRUE(unsat_verdict.ok()) << unsat_verdict.status().ToString();
    ASSERT_TRUE(sat_verdict.ok()) << sat_verdict.status().ToString();
    EXPECT_FALSE(*unsat_verdict) << "threads " << threads;
    EXPECT_TRUE(*sat_verdict) << "threads " << threads;
  }
}

TEST(ParallelDeterminismTest, DatalogFixpointByteIdentical) {
  // Transitive closure of a segment: several rounds of per-rule parallel
  // QE whose merges (rule order, then round order) must be canonical.
  DatalogProgram program;
  program.idb_arities["Reach"] = 2;
  {
    DatalogRule rule;
    rule.head = "Reach";
    rule.head_vars = {0, 1};
    rule.body.push_back(DatalogLiteral::Rel("Edge", {0, 1}));
    program.rules.push_back(rule);
  }
  {
    DatalogRule rule;
    rule.head = "Reach";
    rule.head_vars = {0, 1};
    rule.body.push_back(DatalogLiteral::Rel("Reach", {0, 2}));
    rule.body.push_back(DatalogLiteral::Rel("Edge", {2, 1}));
    program.rules.push_back(rule);
  }
  ConstraintRelation edge(2);
  GeneralizedTuple t;
  t.atoms.emplace_back(V(1) - V(0) - Polynomial(1), RelOp::kEq);
  t.atoms.emplace_back(-V(0), RelOp::kLe);
  t.atoms.emplace_back(V(0) - Polynomial(3), RelOp::kLe);
  edge.AddTuple(std::move(t));
  std::map<std::string, ConstraintRelation> edb;
  edb.emplace("Edge", edge);

  auto run = [&](int threads) {
    ThreadPool pool(threads);
    DatalogOptions options;
    options.qe.pool = &pool;
    DatalogStats stats;
    auto result = EvaluateDatalog(program, edb, options, &stats);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    std::string rendered;
    if (result.ok()) {
      for (const auto& [name, relation] : *result) {
        rendered += name + ": " + relation.ToString() + "\n";
      }
    }
    return rendered + stats.ToJson();
  };
  std::string baseline = run(1);
  for (int threads : kThreadCounts) {
    EXPECT_EQ(run(threads), baseline) << "threads " << threads;
  }
}

TEST(ParallelDeterminismTest, SharedPoolEnvelope) {
  // The same guarantee holds when the pool arrives implicitly via
  // ThreadPool::Shared() (the CCDB_THREADS production path).
  Formula formula = ParabolaBands(4);
  QeOptions options;  // pool == nullptr -> resolve to the shared pool
  std::string baseline;
  for (int threads : kThreadCounts) {
    ThreadPool::ConfigureShared(threads);
    QeStats stats;
    auto result = EliminateQuantifiers(formula, 1, options, &stats);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    std::string rendered = result->ToString() + stats.ToJson();
    if (baseline.empty()) {
      baseline = rendered;
    } else {
      EXPECT_EQ(rendered, baseline) << "threads " << threads;
    }
  }
  ThreadPool::ConfigureShared(1);
}

}  // namespace
}  // namespace ccdb
