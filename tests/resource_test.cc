#include "base/resource.h"

#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "base/status.h"

namespace ccdb {
namespace {

TEST(ResourceLimitsTest, DefaultIsUnlimited) {
  ResourceLimits limits;
  EXPECT_TRUE(limits.unlimited());
  EXPECT_FALSE(ResourceLimits::Deadline(1.0).unlimited());
  EXPECT_FALSE(ResourceLimits::Steps(10).unlimited());
  EXPECT_FALSE(ResourceLimits::Bytes(1024).unlimited());
}

TEST(ResourceGovernorTest, UnlimitedNeverTrips) {
  ResourceGovernor gov(ResourceLimits{});
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(gov.Charge("test.loop").ok());
  }
  gov.ChargeBytes(1ull << 40);
  EXPECT_TRUE(gov.Charge("test.loop").ok());
  EXPECT_FALSE(gov.exhausted());
  EXPECT_EQ(gov.reason(), ExhaustionReason::kNone);
}

TEST(ResourceGovernorTest, StepBudgetTrips) {
  ResourceGovernor gov(ResourceLimits::Steps(5));
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(gov.Charge("test.loop").ok()) << "step " << i;
  }
  Status tripped = gov.Charge("test.loop");
  EXPECT_FALSE(tripped.ok());
  EXPECT_EQ(tripped.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(gov.exhausted());
  EXPECT_EQ(gov.reason(), ExhaustionReason::kSteps);
  EXPECT_EQ(gov.tripped_stage(), "test.loop");
  EXPECT_NE(tripped.message().find("test.loop"), std::string::npos);
  EXPECT_NE(tripped.message().find("steps"), std::string::npos);
}

TEST(ResourceGovernorTest, TripIsSticky) {
  ResourceGovernor gov(ResourceLimits::Steps(1));
  ASSERT_TRUE(gov.Charge("stage.a").ok());
  ASSERT_FALSE(gov.Charge("stage.a").ok());
  // A later charge at a different stage reports the original trip site.
  Status again = gov.Charge("stage.b");
  EXPECT_EQ(again.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(gov.tripped_stage(), "stage.a");
}

TEST(ResourceGovernorTest, ByteBudgetEnforcedOnNextCharge) {
  ResourceGovernor gov(ResourceLimits::Bytes(100));
  gov.ChargeBytes(50);
  EXPECT_TRUE(gov.Charge("test.alloc").ok());
  gov.ChargeBytes(60);  // now over budget; does not trip by itself
  EXPECT_FALSE(gov.exhausted());
  Status tripped = gov.Charge("test.alloc");
  EXPECT_EQ(tripped.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(gov.reason(), ExhaustionReason::kBytes);
  EXPECT_GE(gov.bytes_consumed(), 110u);
}

TEST(ResourceGovernorTest, DeadlineTrips) {
  ResourceGovernor gov(ResourceLimits::Deadline(0.01));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  Status tripped = gov.Charge("test.slow");
  EXPECT_EQ(tripped.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(gov.reason(), ExhaustionReason::kDeadline);
  EXPECT_GE(gov.elapsed_seconds(), 0.01);
}

TEST(ResourceGovernorTest, CancellationFlagTrips) {
  std::atomic<bool> cancel{false};
  ResourceGovernor gov(ResourceLimits{}, &cancel);
  EXPECT_TRUE(gov.Charge("test.loop").ok());
  cancel.store(true);
  Status tripped = gov.Charge("test.loop");
  EXPECT_EQ(tripped.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(gov.reason(), ExhaustionReason::kCancelled);
}

TEST(ResourceGovernorTest, ResetReArms) {
  ResourceGovernor gov(ResourceLimits::Steps(2));
  ASSERT_TRUE(gov.Charge("test.loop", 2).ok());
  ASSERT_FALSE(gov.Charge("test.loop").ok());
  gov.Reset();
  EXPECT_FALSE(gov.exhausted());
  EXPECT_EQ(gov.reason(), ExhaustionReason::kNone);
  EXPECT_EQ(gov.steps_consumed(), 0u);
  EXPECT_EQ(gov.bytes_consumed(), 0u);
  EXPECT_TRUE(gov.Charge("test.loop").ok());
}

TEST(ResourceGovernorTest, MultiStepChargeCountsAll) {
  ResourceGovernor gov(ResourceLimits::Steps(10));
  ASSERT_TRUE(gov.Charge("test.batch", 7).ok());
  EXPECT_EQ(gov.steps_consumed(), 7u);
  EXPECT_FALSE(gov.Charge("test.batch", 7).ok());
}

TEST(ResourceGovernorTest, ExhaustionReasonNames) {
  EXPECT_STREQ(ExhaustionReasonName(ExhaustionReason::kDeadline), "deadline");
  EXPECT_STREQ(ExhaustionReasonName(ExhaustionReason::kSteps), "steps");
  EXPECT_STREQ(ExhaustionReasonName(ExhaustionReason::kBytes), "bytes");
  EXPECT_STREQ(ExhaustionReasonName(ExhaustionReason::kCancelled),
               "cancelled");
}

// The macro must be a no-op (one pointer comparison) for a null governor.
Status GovernedLoop(const ResourceGovernor* gov, int iterations) {
  for (int i = 0; i < iterations; ++i) {
    CCDB_CHECK_BUDGET(gov, "test.macro");
  }
  return Status::Ok();
}

TEST(CheckBudgetMacroTest, NullGovernorIsUnlimited) {
  EXPECT_TRUE(GovernedLoop(nullptr, 100000).ok());
}

TEST(CheckBudgetMacroTest, PropagatesExhaustion) {
  ResourceGovernor gov(ResourceLimits::Steps(10));
  Status status = GovernedLoop(&gov, 100);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
}

// Regression test for the parallel engine: once pool workers charge a
// shared governor concurrently, the consumption snapshot that
// QueryWithPolicy folds into QueryVerdict — and the deadline origin that
// Reset() re-arms between bench cells — must be reachable without a data
// race. Before the counters/origin became atomics, ThreadSanitizer
// flagged this test (concurrent Charge vs Snapshot/Reset on the
// governor's clock origin); it must stay green under -DCCDB_SANITIZE=thread.
TEST(ResourceGovernorTest, ConcurrentChargeSnapshotAndResetAreRaceFree) {
  ResourceGovernor gov(ResourceLimits::Deadline(30.0));
  std::atomic<bool> stop{false};
  std::vector<std::thread> chargers;
  for (int t = 0; t < 4; ++t) {
    chargers.emplace_back([&gov, &stop] {
      while (!stop.load(std::memory_order_acquire)) {
        // Deadline-limited: every charge reads the clock origin.
        (void)gov.Charge("test.concurrent");
        gov.ChargeBytes(8);
      }
    });
  }
  for (int round = 0; round < 200; ++round) {
    ResourceGovernor::Consumption snapshot = gov.Snapshot();
    EXPECT_GE(snapshot.elapsed_seconds, 0.0);
    // bytes/steps grow monotonically between resets; the reading itself
    // must simply be tear-free.
    (void)snapshot.steps;
    (void)snapshot.bytes;
    if (round % 50 == 49) gov.Reset();  // re-arm while charges are in flight
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : chargers) t.join();
  EXPECT_FALSE(gov.exhausted());
}

}  // namespace
}  // namespace ccdb
