#include "base/resource.h"

#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "base/status.h"

namespace ccdb {
namespace {

TEST(ResourceLimitsTest, DefaultIsUnlimited) {
  ResourceLimits limits;
  EXPECT_TRUE(limits.unlimited());
  EXPECT_FALSE(ResourceLimits::Deadline(1.0).unlimited());
  EXPECT_FALSE(ResourceLimits::Steps(10).unlimited());
  EXPECT_FALSE(ResourceLimits::Bytes(1024).unlimited());
}

TEST(ResourceGovernorTest, UnlimitedNeverTrips) {
  ResourceGovernor gov(ResourceLimits{});
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(gov.Charge("test.loop").ok());
  }
  gov.ChargeBytes(1ull << 40);
  EXPECT_TRUE(gov.Charge("test.loop").ok());
  EXPECT_FALSE(gov.exhausted());
  EXPECT_EQ(gov.reason(), ExhaustionReason::kNone);
}

TEST(ResourceGovernorTest, StepBudgetTrips) {
  ResourceGovernor gov(ResourceLimits::Steps(5));
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(gov.Charge("test.loop").ok()) << "step " << i;
  }
  Status tripped = gov.Charge("test.loop");
  EXPECT_FALSE(tripped.ok());
  EXPECT_EQ(tripped.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(gov.exhausted());
  EXPECT_EQ(gov.reason(), ExhaustionReason::kSteps);
  EXPECT_EQ(gov.tripped_stage(), "test.loop");
  EXPECT_NE(tripped.message().find("test.loop"), std::string::npos);
  EXPECT_NE(tripped.message().find("steps"), std::string::npos);
}

TEST(ResourceGovernorTest, TripIsSticky) {
  ResourceGovernor gov(ResourceLimits::Steps(1));
  ASSERT_TRUE(gov.Charge("stage.a").ok());
  ASSERT_FALSE(gov.Charge("stage.a").ok());
  // A later charge at a different stage reports the original trip site.
  Status again = gov.Charge("stage.b");
  EXPECT_EQ(again.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(gov.tripped_stage(), "stage.a");
}

TEST(ResourceGovernorTest, ByteBudgetEnforcedOnNextCharge) {
  ResourceGovernor gov(ResourceLimits::Bytes(100));
  gov.ChargeBytes(50);
  EXPECT_TRUE(gov.Charge("test.alloc").ok());
  gov.ChargeBytes(60);  // now over budget; does not trip by itself
  EXPECT_FALSE(gov.exhausted());
  Status tripped = gov.Charge("test.alloc");
  EXPECT_EQ(tripped.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(gov.reason(), ExhaustionReason::kBytes);
  EXPECT_GE(gov.bytes_consumed(), 110u);
}

TEST(ResourceGovernorTest, DeadlineTrips) {
  ResourceGovernor gov(ResourceLimits::Deadline(0.01));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  Status tripped = gov.Charge("test.slow");
  EXPECT_EQ(tripped.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(gov.reason(), ExhaustionReason::kDeadline);
  EXPECT_GE(gov.elapsed_seconds(), 0.01);
}

TEST(ResourceGovernorTest, CancellationFlagTrips) {
  std::atomic<bool> cancel{false};
  ResourceGovernor gov(ResourceLimits{}, &cancel);
  EXPECT_TRUE(gov.Charge("test.loop").ok());
  cancel.store(true);
  Status tripped = gov.Charge("test.loop");
  EXPECT_EQ(tripped.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(gov.reason(), ExhaustionReason::kCancelled);
}

TEST(ResourceGovernorTest, ResetReArms) {
  ResourceGovernor gov(ResourceLimits::Steps(2));
  ASSERT_TRUE(gov.Charge("test.loop", 2).ok());
  ASSERT_FALSE(gov.Charge("test.loop").ok());
  gov.Reset();
  EXPECT_FALSE(gov.exhausted());
  EXPECT_EQ(gov.reason(), ExhaustionReason::kNone);
  EXPECT_EQ(gov.steps_consumed(), 0u);
  EXPECT_EQ(gov.bytes_consumed(), 0u);
  EXPECT_TRUE(gov.Charge("test.loop").ok());
}

TEST(ResourceGovernorTest, MultiStepChargeCountsAll) {
  ResourceGovernor gov(ResourceLimits::Steps(10));
  ASSERT_TRUE(gov.Charge("test.batch", 7).ok());
  EXPECT_EQ(gov.steps_consumed(), 7u);
  EXPECT_FALSE(gov.Charge("test.batch", 7).ok());
}

TEST(ResourceGovernorTest, ExhaustionReasonNames) {
  EXPECT_STREQ(ExhaustionReasonName(ExhaustionReason::kDeadline), "deadline");
  EXPECT_STREQ(ExhaustionReasonName(ExhaustionReason::kSteps), "steps");
  EXPECT_STREQ(ExhaustionReasonName(ExhaustionReason::kBytes), "bytes");
  EXPECT_STREQ(ExhaustionReasonName(ExhaustionReason::kCancelled),
               "cancelled");
}

// The macro must be a no-op (one pointer comparison) for a null governor.
Status GovernedLoop(const ResourceGovernor* gov, int iterations) {
  for (int i = 0; i < iterations; ++i) {
    CCDB_CHECK_BUDGET(gov, "test.macro");
  }
  return Status::Ok();
}

TEST(CheckBudgetMacroTest, NullGovernorIsUnlimited) {
  EXPECT_TRUE(GovernedLoop(nullptr, 100000).ok());
}

TEST(CheckBudgetMacroTest, PropagatesExhaustion) {
  ResourceGovernor gov(ResourceLimits::Steps(10));
  Status status = GovernedLoop(&gov, 100);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace ccdb
