#include "base/metrics.h"

#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace ccdb {
namespace {

TEST(CounterTest, IncrementsAndResets) {
  Counter c("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsAreLossless) {
  Counter c("test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncrementsPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(c.value(),
            static_cast<std::uint64_t>(kThreads) * kIncrementsPerThread);
}

TEST(MaxGaugeTest, KeepsRunningMaximum) {
  MaxGauge g("test.gauge");
  g.RecordMax(7);
  g.RecordMax(3);
  EXPECT_EQ(g.value(), 7u);
  g.RecordMax(19);
  EXPECT_EQ(g.value(), 19u);
}

TEST(HistogramTest, TracksCountSumMinMax) {
  Histogram h("test.hist");
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);  // Empty histogram reads 0, not the sentinel.
  EXPECT_EQ(h.max(), 0u);
  h.Record(5);
  h.Record(1);
  h.Record(100);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 106u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 106.0 / 3.0);
}

TEST(HistogramTest, PowerOfTwoBuckets) {
  Histogram h("test.hist.buckets");
  h.Record(0);  // bucket 0
  h.Record(1);  // bucket 0
  h.Record(2);  // bucket 1: [2, 4)
  h.Record(3);  // bucket 1
  h.Record(4);  // bucket 2: [4, 8)
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 1u);
}

TEST(MetricsRegistryTest, SameNameSameInstrument) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* a = registry.GetCounter("registry_test.same");
  Counter* b = registry.GetCounter("registry_test.same");
  EXPECT_EQ(a, b);
  // Distinct namespaces per instrument kind.
  EXPECT_NE(static_cast<void*>(registry.GetMaxGauge("registry_test.same")),
            static_cast<void*>(a));
}

TEST(MetricsRegistryTest, SnapshotValuesSeesUpdates) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* c = registry.GetCounter("registry_test.snapshot_counter");
  MaxGauge* g = registry.GetMaxGauge("registry_test.snapshot_gauge");
  Histogram* h = registry.GetHistogram("registry_test.snapshot_hist");
  auto before = registry.SnapshotValues();
  c->Increment(3);
  g->RecordMax(before["registry_test.snapshot_gauge"] + 11);
  h->Record(6);
  auto after = registry.SnapshotValues();
  EXPECT_EQ(after["registry_test.snapshot_counter"] -
                before["registry_test.snapshot_counter"],
            3u);
  EXPECT_EQ(after["registry_test.snapshot_gauge"],
            before["registry_test.snapshot_gauge"] + 11);
  EXPECT_EQ(after["registry_test.snapshot_hist.count"] -
                before["registry_test.snapshot_hist.count"],
            1u);
  EXPECT_EQ(after["registry_test.snapshot_hist.sum"] -
                before["registry_test.snapshot_hist.sum"],
            6u);
}

TEST(MetricsRegistryTest, SnapshotJsonShape) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("registry_test.json_counter")->Increment(9);
  registry.GetMaxGauge("registry_test.json_gauge")->RecordMax(4);
  registry.GetHistogram("registry_test.json_hist")->Record(2);
  std::string json = registry.SnapshotJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(json.find("\"registry_test.json_counter\""), std::string::npos);
  EXPECT_NE(json.find("\"registry_test.json_gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"registry_test.json_hist\""), std::string::npos);
  int braces = 0;
  for (char c : json) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
    EXPECT_GE(braces, 0);
  }
  EXPECT_EQ(braces, 0);
}

TEST(MetricsRegistryTest, MacrosRecordThroughRegistry) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  std::uint64_t before =
      registry.GetCounter("registry_test.macro_counter")->value();
  CCDB_METRIC_COUNT("registry_test.macro_counter", 5);
  CCDB_METRIC_MAX("registry_test.macro_gauge", 123);
  CCDB_METRIC_HISTOGRAM("registry_test.macro_hist", 8);
  EXPECT_EQ(registry.GetCounter("registry_test.macro_counter")->value(),
            before + 5);
  EXPECT_GE(registry.GetMaxGauge("registry_test.macro_gauge")->value(), 123u);
  EXPECT_GE(registry.GetHistogram("registry_test.macro_hist")->count(), 1u);
}

TEST(HistogramTest, PercentileEmptyIsZero) {
  Histogram h("test.hist.pct_empty");
  EXPECT_EQ(h.Percentile(0.5), 0.0);
  EXPECT_EQ(h.Percentile(0.99), 0.0);
}

TEST(HistogramTest, PercentileSingleValueIsExact) {
  Histogram h("test.hist.pct_single");
  h.Record(100);
  // One value: every percentile clamps to [min, max] = {100}.
  EXPECT_EQ(h.Percentile(0.0), 100.0);
  EXPECT_EQ(h.Percentile(0.5), 100.0);
  EXPECT_EQ(h.Percentile(1.0), 100.0);
}

TEST(HistogramTest, PercentileMonotoneAndBracketed) {
  Histogram h("test.hist.pct_mono");
  // 100 values 1..100: p50 ~ 50, p90 ~ 90, p99 ~ 99, up to
  // power-of-two bucket resolution (a bucket spans [2^i, 2^(i+1))).
  for (std::uint64_t v = 1; v <= 100; ++v) h.Record(v);
  double p50 = h.Percentile(0.50);
  double p90 = h.Percentile(0.90);
  double p99 = h.Percentile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  // The estimate lands inside the bucket that holds the true rank.
  EXPECT_GE(p50, 32.0);
  EXPECT_LE(p50, 64.0);
  EXPECT_GE(p90, 64.0);
  EXPECT_LE(p90, 100.0);
  EXPECT_GE(p99, 64.0);
  EXPECT_LE(p99, 100.0);
  // Bracketed by the observed range at the extremes.
  EXPECT_GE(h.Percentile(0.0), static_cast<double>(h.min()));
  EXPECT_LE(h.Percentile(1.0), static_cast<double>(h.max()));
}

TEST(HistogramTest, SnapshotJsonCarriesPercentiles) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Histogram* h = registry.GetHistogram("registry_test.pct_hist");
  for (std::uint64_t v = 1; v <= 16; ++v) h->Record(v);
  std::string json = registry.SnapshotJson();
  std::size_t at = json.find("\"registry_test.pct_hist\"");
  ASSERT_NE(at, std::string::npos);
  EXPECT_NE(json.find("\"p50\":", at), std::string::npos);
  EXPECT_NE(json.find("\"p90\":", at), std::string::npos);
  EXPECT_NE(json.find("\"p99\":", at), std::string::npos);
}

TEST(JsonObjectBuilderTest, BuildsAndEscapes) {
  JsonObjectBuilder builder;
  builder.Add("n", std::uint64_t{7})
      .Add("pi", 3.5)
      .Add("flag", true)
      .Add("text", std::string("a\"b\\c\nd"))
      .AddRaw("nested", "{\"x\":1}");
  std::string json = builder.Build();
  EXPECT_EQ(json,
            "{\"n\":7,\"pi\":3.5,\"flag\":true,"
            "\"text\":\"a\\\"b\\\\c\\nd\",\"nested\":{\"x\":1}}");
}

}  // namespace
}  // namespace ccdb
