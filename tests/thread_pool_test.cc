// Stress/property tests for the work-stealing pool: seeded random task
// graphs (nested ParallelFor), tasks that throw or return error Status,
// governor exhaustion mid-flight, cancellation from another thread — and
// the invariants that no task is lost, no call deadlocks, errors report
// the lowest failing index, and kResourceExhausted stays sticky.

#include "base/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <numeric>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/resource.h"

namespace ccdb {
namespace {

TEST(ThreadPoolTest, SerialPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1);
  EXPECT_EQ(pool.workers(), 0);
  std::vector<int> order;
  Status status = pool.ParallelFor(5, [&](std::size_t i) -> Status {
    order.push_back(static_cast<int>(i));  // safe: inline on the caller
    return Status::Ok();
  });
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    constexpr std::size_t kCount = 500;
    std::vector<std::atomic<int>> runs(kCount);
    Status status = pool.ParallelFor(kCount, [&](std::size_t i) -> Status {
      runs[i].fetch_add(1, std::memory_order_relaxed);
      return Status::Ok();
    });
    ASSERT_TRUE(status.ok());
    for (std::size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(runs[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPoolTest, ParallelMapIsIndexAddressed) {
  ThreadPool pool(8);
  auto result = pool.ParallelMap<std::uint64_t>(
      256, [](std::size_t i) -> StatusOr<std::uint64_t> {
        return static_cast<std::uint64_t>(i * i);
      });
  ASSERT_TRUE(result.ok());
  for (std::size_t i = 0; i < result->size(); ++i) {
    EXPECT_EQ((*result)[i], i * i);
  }
}

TEST(ThreadPoolTest, LowestFailingIndexWins) {
  for (int threads : {1, 4, 8}) {
    ThreadPool pool(threads);
    Status status = pool.ParallelFor(64, [&](std::size_t i) -> Status {
      if (i >= 7 && i % 3 == 1) {
        return Status::Internal("failed at " + std::to_string(i));
      }
      return Status::Ok();
    });
    ASSERT_FALSE(status.ok());
    // Indices are claimed in order, so the lowest failing index (7) always
    // runs; the verdict must not depend on completion order.
    EXPECT_EQ(status.message(), "failed at 7") << "threads " << threads;
  }
}

TEST(ThreadPoolTest, ExceptionsPropagateToTheCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      {
        (void)pool.ParallelFor(32, [](std::size_t i) -> Status {
          if (i == 3) throw std::runtime_error("boom");
          return Status::Ok();
        });
      },
      std::runtime_error);
}

TEST(ThreadPoolTest, SubmitDrainsEveryTask) {
  constexpr int kTasks = 200;
  std::atomic<int> done{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    // Destruction joins the workers and runs any still-queued tasks
    // inline, so nothing submitted is ever lost.
  }
  EXPECT_EQ(done.load(), kTasks);
}

// Seeded random nested task graphs: every node of a random fan-out tree
// increments its slot exactly once, across pools of several widths. This
// is the no-deadlock / no-lost-task property test — nested ParallelFor is
// exactly how parallel QE recurses (disjunct split -> CAD lift -> FM).
TEST(ThreadPoolTest, SeededRandomNestedTaskGraphs) {
  for (std::uint64_t seed : {1u, 7u, 42u}) {
    for (int threads : {2, 8}) {
      ThreadPool pool(threads);
      std::mt19937_64 rng(seed);
      const int depth = 3;
      std::atomic<std::uint64_t> nodes{0};
      // Derive per-node fan-outs deterministically from the seed so the
      // expected node count is computable up front.
      std::vector<std::size_t> fanout(depth);
      std::uint64_t expected = 0, layer = 1;
      for (int d = 0; d < depth; ++d) {
        fanout[d] = 2 + rng() % 4;  // 2..5 children per node
        layer *= fanout[d];
        expected += layer;
      }
      std::function<Status(int)> spawn = [&](int level) -> Status {
        if (level == depth) return Status::Ok();
        return pool.ParallelFor(fanout[level], [&, level](std::size_t) {
          nodes.fetch_add(1, std::memory_order_relaxed);
          return spawn(level + 1);
        });
      };
      ASSERT_TRUE(spawn(0).ok());
      EXPECT_EQ(nodes.load(), expected)
          << "seed " << seed << " threads " << threads;
    }
  }
}

TEST(ThreadPoolTest, GovernorExhaustionMidFlightIsSticky) {
  ThreadPool pool(8);
  ResourceGovernor gov(ResourceLimits::Steps(50));
  Status status = pool.ParallelFor(64, [&](std::size_t) -> Status {
    for (int step = 0; step < 10; ++step) {
      Status charge = gov.Charge("test.parallel");
      if (!charge.ok()) return charge;
    }
    return Status::Ok();
  });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(gov.exhausted());
  EXPECT_EQ(gov.reason(), ExhaustionReason::kSteps);
  // Sticky: every later charge reports the same verdict.
  Status again = gov.Charge("test.after");
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(again.message(), status.message());
}

TEST(ThreadPoolTest, CancellationFromAnotherThreadStopsTheBatch) {
  ThreadPool pool(4);
  std::atomic<bool> cancel{false};
  ResourceGovernor gov(ResourceLimits{}, &cancel);
  std::atomic<bool> started{false};
  std::thread canceller([&] {
    while (!started.load(std::memory_order_acquire)) std::this_thread::yield();
    cancel.store(true, std::memory_order_release);
  });
  Status status = pool.ParallelFor(32, [&](std::size_t) -> Status {
    started.store(true, std::memory_order_release);
    // Charge until the external flag is observed; an uncancelled governor
    // with no limits never trips, so this loop ends only via cancellation.
    while (true) {
      Status charge = gov.Charge("test.cancel");
      if (!charge.ok()) return charge;
    }
  });
  canceller.join();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(gov.reason(), ExhaustionReason::kCancelled);
}

TEST(ThreadPoolTest, FailureSkipsUnclaimedWorkButFinishesClaimed) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  Status status = pool.ParallelFor(1000, [&](std::size_t i) -> Status {
    executed.fetch_add(1, std::memory_order_relaxed);
    if (i == 0) return Status::Internal("early failure");
    return Status::Ok();
  });
  ASSERT_FALSE(status.ok());
  // The batch must terminate (every claimed body ran to completion) but
  // is allowed to skip work claimed after the failure was recorded.
  EXPECT_GE(executed.load(), 1);
  EXPECT_LE(executed.load(), 1000);
}

TEST(ThreadPoolTest, SharedPoolIsConfigurable) {
  ThreadPool::ConfigureShared(3);
  EXPECT_EQ(ThreadPool::Shared()->threads(), 3);
  EXPECT_EQ(ThreadPool::Resolve(nullptr), ThreadPool::Shared());
  ThreadPool local(2);
  EXPECT_EQ(ThreadPool::Resolve(&local), &local);
  ThreadPool::ConfigureShared(1);
  EXPECT_EQ(ThreadPool::Shared()->threads(), 1);
}

}  // namespace
}  // namespace ccdb
