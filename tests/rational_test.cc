#include "arith/rational.h"

#include <cstdint>
#include <random>

#include <gtest/gtest.h>

#include "property_env.h"

namespace ccdb {
namespace {

TEST(RationalTest, Canonicalization) {
  Rational r(BigInt(4), BigInt(8));
  EXPECT_EQ(r.numerator(), BigInt(1));
  EXPECT_EQ(r.denominator(), BigInt(2));

  Rational negative_den(BigInt(3), BigInt(-6));
  EXPECT_EQ(negative_den.numerator(), BigInt(-1));
  EXPECT_EQ(negative_den.denominator(), BigInt(2));

  Rational zero(BigInt(0), BigInt(-17));
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.denominator(), BigInt(1));
}

TEST(RationalTest, FromStringForms) {
  auto integral = Rational::FromString("42");
  ASSERT_TRUE(integral.ok());
  EXPECT_EQ(*integral, Rational(42));

  auto fraction = Rational::FromString("-6/8");
  ASSERT_TRUE(fraction.ok());
  EXPECT_EQ(*fraction, Rational(BigInt(-3), BigInt(4)));

  auto decimal = Rational::FromString("3.25");
  ASSERT_TRUE(decimal.ok());
  EXPECT_EQ(*decimal, Rational(BigInt(13), BigInt(4)));

  auto negative_decimal = Rational::FromString("-0.5");
  ASSERT_TRUE(negative_decimal.ok());
  EXPECT_EQ(*negative_decimal, Rational(BigInt(-1), BigInt(2)));
}

TEST(RationalTest, FromStringInvalid) {
  EXPECT_FALSE(Rational::FromString("1/0").ok());
  EXPECT_FALSE(Rational::FromString("x").ok());
  EXPECT_FALSE(Rational::FromString("3.").ok());
  EXPECT_FALSE(Rational::FromString("").ok());
}

TEST(RationalTest, Arithmetic) {
  Rational half(BigInt(1), BigInt(2));
  Rational third(BigInt(1), BigInt(3));
  EXPECT_EQ(half + third, Rational(BigInt(5), BigInt(6)));
  EXPECT_EQ(half - third, Rational(BigInt(1), BigInt(6)));
  EXPECT_EQ(half * third, Rational(BigInt(1), BigInt(6)));
  EXPECT_EQ(half / third, Rational(BigInt(3), BigInt(2)));
  EXPECT_EQ(-half, Rational(BigInt(-1), BigInt(2)));
  EXPECT_EQ(half.Inverse(), Rational(2));
}

TEST(RationalTest, FieldAxiomsRandom) {
  std::mt19937_64 rng(3);
  std::uniform_int_distribution<std::int64_t> dist(-1000, 1000);
  // Mix small components with word-boundary ones so the sweep crosses the
  // inline fast paths, the __int128 paths, and the generic limb paths.
  const std::int64_t boundary[] = {
      INT64_MAX, INT64_MIN, INT64_MAX - 1, (1ll << 62) + 3, -(1ll << 62),
      (1ll << 32), (1ll << 31) - 1};
  std::uniform_int_distribution<int> pick(0, 9);
  auto random_component = [&]() -> std::int64_t {
    int c = pick(rng);
    if (c < 7) return dist(rng);
    return boundary[static_cast<std::size_t>(rng() % 7)];
  };
  auto random_rational = [&]() {
    std::int64_t d = 0;
    while (d == 0) d = random_component();
    return Rational(BigInt(random_component()), BigInt(d));
  };
  const int iters = 500 * ccdb_test::PropertyIterScale();
  for (int i = 0; i < iters; ++i) {
    Rational a = random_rational();
    Rational b = random_rational();
    Rational c = random_rational();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);  // Distributivity holds exactly.
    EXPECT_EQ(a + Rational(0), a);
    EXPECT_EQ(a * Rational(1), a);
    EXPECT_EQ(a - a, Rational(0));
    if (!a.is_zero()) {
      EXPECT_EQ(a * a.Inverse(), Rational(1));
    }
  }
}

TEST(RationalTest, Comparisons) {
  EXPECT_LT(Rational(BigInt(1), BigInt(3)), Rational(BigInt(1), BigInt(2)));
  EXPECT_LT(Rational(-1), Rational(BigInt(-1), BigInt(2)));
  EXPECT_GT(Rational(BigInt(7), BigInt(2)), Rational(3));
  EXPECT_EQ(Rational(BigInt(2), BigInt(4)).Compare(Rational(BigInt(1), BigInt(2))),
            0);
}

TEST(RationalTest, FloorCeil) {
  EXPECT_EQ(Rational(BigInt(7), BigInt(2)).Floor(), BigInt(3));
  EXPECT_EQ(Rational(BigInt(7), BigInt(2)).Ceil(), BigInt(4));
  EXPECT_EQ(Rational(BigInt(-7), BigInt(2)).Floor(), BigInt(-4));
  EXPECT_EQ(Rational(BigInt(-7), BigInt(2)).Ceil(), BigInt(-3));
  EXPECT_EQ(Rational(5).Floor(), BigInt(5));
  EXPECT_EQ(Rational(5).Ceil(), BigInt(5));
  EXPECT_EQ(Rational(0).Floor(), BigInt(0));
}

TEST(RationalTest, Pow) {
  Rational two_thirds(BigInt(2), BigInt(3));
  EXPECT_EQ(two_thirds.Pow(2), Rational(BigInt(4), BigInt(9)));
  EXPECT_EQ(two_thirds.Pow(0), Rational(1));
  EXPECT_EQ(two_thirds.Pow(-1), Rational(BigInt(3), BigInt(2)));
  EXPECT_EQ(two_thirds.Pow(-2), Rational(BigInt(9), BigInt(4)));
}

TEST(RationalTest, FromScaledInt) {
  EXPECT_EQ(Rational::FromScaledInt(BigInt(3), 2), Rational(12));
  EXPECT_EQ(Rational::FromScaledInt(BigInt(3), -2),
            Rational(BigInt(3), BigInt(4)));
  EXPECT_EQ(Rational::FromScaledInt(BigInt(-5), -1),
            Rational(BigInt(-5), BigInt(2)));
}

TEST(RationalTest, Midpoint) {
  EXPECT_EQ(Rational::Midpoint(Rational(1), Rational(2)),
            Rational(BigInt(3), BigInt(2)));
  EXPECT_EQ(Rational::Midpoint(Rational(-1), Rational(1)), Rational(0));
}

TEST(RationalTest, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(BigInt(1), BigInt(2)).ToDouble(), 0.5);
  EXPECT_DOUBLE_EQ(Rational(BigInt(-7), BigInt(4)).ToDouble(), -1.75);
  EXPECT_NEAR(Rational(BigInt(1), BigInt(3)).ToDouble(), 1.0 / 3.0, 1e-15);
  // Huge numerator/denominator ratio handled without overflow.
  Rational big(BigInt(10).Pow(400), BigInt(10).Pow(398));
  EXPECT_NEAR(big.ToDouble(), 100.0, 1e-9);
}

TEST(RationalTest, BitLength) {
  EXPECT_EQ(Rational(BigInt(255), BigInt(16)).bit_length(), 8u);
  EXPECT_EQ(Rational(BigInt(3), BigInt(1024)).bit_length(), 11u);
  EXPECT_EQ(Rational(0).bit_length(), 1u);  // 0/1: denominator has 1 bit

  // bit_length measures the canonical (reduced) form, in both the inline and
  // the spilled BigInt representations.
  EXPECT_EQ(Rational(BigInt(INT64_MIN)).bit_length(), 64u);
  EXPECT_EQ(Rational(BigInt::Pow2(100) + BigInt(1), BigInt::Pow2(80))
                .bit_length(),
            101u);
  // 2^80 / 2^100 reduces to 1/2^20 before measuring.
  EXPECT_EQ(Rational(BigInt::Pow2(80), BigInt::Pow2(100)).bit_length(), 21u);
}

// ---------------------------------------------------------------------------
// Word-boundary behavior of the small-value fast paths: results must agree
// with the canonicalizing constructor applied to the naive cross products,
// and canonical-form invariants (den > 0, reduced) must hold when components
// spill out of the inline word.
// ---------------------------------------------------------------------------

TEST(RationalSpillTest, CanonicalizationAtTheWordBoundary) {
  EXPECT_EQ(Rational(BigInt(INT64_MIN), BigInt(INT64_MIN)), Rational(1));

  // Negative denominator at the boundary: sign moves to the numerator and the
  // denominator becomes +2^63, which no longer fits in the word.
  Rational r(BigInt(1), BigInt(INT64_MIN));
  EXPECT_EQ(r.numerator(), BigInt(-1));
  EXPECT_EQ(r.denominator(), BigInt::Pow2(63));
  EXPECT_FALSE(r.denominator().is_negative());
  EXPECT_FALSE(r.denominator().FitsInt64());
  EXPECT_EQ(r.ToString(), "-1/9223372036854775808");

  Rational reduced(BigInt(INT64_MIN), BigInt(1ll << 62));
  EXPECT_EQ(reduced, Rational(-2));
}

TEST(RationalSpillTest, FastAndGenericPathsAgreeAtTheBoundary) {
  // Each operator's word/__int128 fast path must produce the same canonical
  // value as the canonicalizing constructor applied to the naive formula.
  const Rational values[] = {
      Rational(BigInt(INT64_MAX), BigInt(2)),
      Rational(BigInt(INT64_MIN), BigInt(3)),
      Rational(BigInt((1ll << 62) + 1), BigInt(INT64_MAX)),
      Rational(BigInt(-7), BigInt(INT64_MAX - 1)),
      Rational(BigInt::Pow2(90) + BigInt(1), BigInt::Pow2(40)),
      Rational(BigInt(5), BigInt(6)),
  };
  for (const Rational& a : values) {
    for (const Rational& b : values) {
      const BigInt& an = a.numerator();
      const BigInt& ad = a.denominator();
      const BigInt& bn = b.numerator();
      const BigInt& bd = b.denominator();
      EXPECT_EQ(a + b, Rational(an * bd + bn * ad, ad * bd));
      EXPECT_EQ(a - b, Rational(an * bd - bn * ad, ad * bd));
      EXPECT_EQ(a * b, Rational(an * bn, ad * bd));
      EXPECT_EQ(a / b, Rational(an * bd, ad * bn));
      EXPECT_EQ(a.Compare(b), (a - b).sign());
    }
  }
}

TEST(RationalTest, ToString) {
  EXPECT_EQ(Rational(5).ToString(), "5");
  EXPECT_EQ(Rational(BigInt(-3), BigInt(4)).ToString(), "-3/4");
  EXPECT_EQ(Rational(0).ToString(), "0");
}

}  // namespace
}  // namespace ccdb
