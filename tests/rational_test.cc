#include "arith/rational.h"

#include <random>

#include <gtest/gtest.h>

namespace ccdb {
namespace {

TEST(RationalTest, Canonicalization) {
  Rational r(BigInt(4), BigInt(8));
  EXPECT_EQ(r.numerator(), BigInt(1));
  EXPECT_EQ(r.denominator(), BigInt(2));

  Rational negative_den(BigInt(3), BigInt(-6));
  EXPECT_EQ(negative_den.numerator(), BigInt(-1));
  EXPECT_EQ(negative_den.denominator(), BigInt(2));

  Rational zero(BigInt(0), BigInt(-17));
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.denominator(), BigInt(1));
}

TEST(RationalTest, FromStringForms) {
  auto integral = Rational::FromString("42");
  ASSERT_TRUE(integral.ok());
  EXPECT_EQ(*integral, Rational(42));

  auto fraction = Rational::FromString("-6/8");
  ASSERT_TRUE(fraction.ok());
  EXPECT_EQ(*fraction, Rational(BigInt(-3), BigInt(4)));

  auto decimal = Rational::FromString("3.25");
  ASSERT_TRUE(decimal.ok());
  EXPECT_EQ(*decimal, Rational(BigInt(13), BigInt(4)));

  auto negative_decimal = Rational::FromString("-0.5");
  ASSERT_TRUE(negative_decimal.ok());
  EXPECT_EQ(*negative_decimal, Rational(BigInt(-1), BigInt(2)));
}

TEST(RationalTest, FromStringInvalid) {
  EXPECT_FALSE(Rational::FromString("1/0").ok());
  EXPECT_FALSE(Rational::FromString("x").ok());
  EXPECT_FALSE(Rational::FromString("3.").ok());
  EXPECT_FALSE(Rational::FromString("").ok());
}

TEST(RationalTest, Arithmetic) {
  Rational half(BigInt(1), BigInt(2));
  Rational third(BigInt(1), BigInt(3));
  EXPECT_EQ(half + third, Rational(BigInt(5), BigInt(6)));
  EXPECT_EQ(half - third, Rational(BigInt(1), BigInt(6)));
  EXPECT_EQ(half * third, Rational(BigInt(1), BigInt(6)));
  EXPECT_EQ(half / third, Rational(BigInt(3), BigInt(2)));
  EXPECT_EQ(-half, Rational(BigInt(-1), BigInt(2)));
  EXPECT_EQ(half.Inverse(), Rational(2));
}

TEST(RationalTest, FieldAxiomsRandom) {
  std::mt19937_64 rng(3);
  std::uniform_int_distribution<std::int64_t> dist(-1000, 1000);
  auto random_rational = [&]() {
    std::int64_t d = 0;
    while (d == 0) d = dist(rng);
    return Rational(BigInt(dist(rng)), BigInt(d));
  };
  for (int i = 0; i < 500; ++i) {
    Rational a = random_rational();
    Rational b = random_rational();
    Rational c = random_rational();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);  // Distributivity holds exactly.
    EXPECT_EQ(a + Rational(0), a);
    EXPECT_EQ(a * Rational(1), a);
    EXPECT_EQ(a - a, Rational(0));
    if (!a.is_zero()) {
      EXPECT_EQ(a * a.Inverse(), Rational(1));
    }
  }
}

TEST(RationalTest, Comparisons) {
  EXPECT_LT(Rational(BigInt(1), BigInt(3)), Rational(BigInt(1), BigInt(2)));
  EXPECT_LT(Rational(-1), Rational(BigInt(-1), BigInt(2)));
  EXPECT_GT(Rational(BigInt(7), BigInt(2)), Rational(3));
  EXPECT_EQ(Rational(BigInt(2), BigInt(4)).Compare(Rational(BigInt(1), BigInt(2))),
            0);
}

TEST(RationalTest, FloorCeil) {
  EXPECT_EQ(Rational(BigInt(7), BigInt(2)).Floor(), BigInt(3));
  EXPECT_EQ(Rational(BigInt(7), BigInt(2)).Ceil(), BigInt(4));
  EXPECT_EQ(Rational(BigInt(-7), BigInt(2)).Floor(), BigInt(-4));
  EXPECT_EQ(Rational(BigInt(-7), BigInt(2)).Ceil(), BigInt(-3));
  EXPECT_EQ(Rational(5).Floor(), BigInt(5));
  EXPECT_EQ(Rational(5).Ceil(), BigInt(5));
  EXPECT_EQ(Rational(0).Floor(), BigInt(0));
}

TEST(RationalTest, Pow) {
  Rational two_thirds(BigInt(2), BigInt(3));
  EXPECT_EQ(two_thirds.Pow(2), Rational(BigInt(4), BigInt(9)));
  EXPECT_EQ(two_thirds.Pow(0), Rational(1));
  EXPECT_EQ(two_thirds.Pow(-1), Rational(BigInt(3), BigInt(2)));
  EXPECT_EQ(two_thirds.Pow(-2), Rational(BigInt(9), BigInt(4)));
}

TEST(RationalTest, FromScaledInt) {
  EXPECT_EQ(Rational::FromScaledInt(BigInt(3), 2), Rational(12));
  EXPECT_EQ(Rational::FromScaledInt(BigInt(3), -2),
            Rational(BigInt(3), BigInt(4)));
  EXPECT_EQ(Rational::FromScaledInt(BigInt(-5), -1),
            Rational(BigInt(-5), BigInt(2)));
}

TEST(RationalTest, Midpoint) {
  EXPECT_EQ(Rational::Midpoint(Rational(1), Rational(2)),
            Rational(BigInt(3), BigInt(2)));
  EXPECT_EQ(Rational::Midpoint(Rational(-1), Rational(1)), Rational(0));
}

TEST(RationalTest, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(BigInt(1), BigInt(2)).ToDouble(), 0.5);
  EXPECT_DOUBLE_EQ(Rational(BigInt(-7), BigInt(4)).ToDouble(), -1.75);
  EXPECT_NEAR(Rational(BigInt(1), BigInt(3)).ToDouble(), 1.0 / 3.0, 1e-15);
  // Huge numerator/denominator ratio handled without overflow.
  Rational big(BigInt(10).Pow(400), BigInt(10).Pow(398));
  EXPECT_NEAR(big.ToDouble(), 100.0, 1e-9);
}

TEST(RationalTest, BitLength) {
  EXPECT_EQ(Rational(BigInt(255), BigInt(16)).bit_length(), 8u);
  EXPECT_EQ(Rational(BigInt(3), BigInt(1024)).bit_length(), 11u);
  EXPECT_EQ(Rational(0).bit_length(), 1u);  // 0/1: denominator has 1 bit
}

TEST(RationalTest, ToString) {
  EXPECT_EQ(Rational(5).ToString(), "5");
  EXPECT_EQ(Rational(BigInt(-3), BigInt(4)).ToString(), "-3/4");
  EXPECT_EQ(Rational(0).ToString(), "0");
}

}  // namespace
}  // namespace ccdb
