// Session contexts (DESIGN.md §16): the de-globalized execution scope.
// Two sessions with DIFFERENT configs — plan on vs off, 1 vs 8 threads,
// private pools — coexist in one process and answer byte-identically to
// their serial single-threaded equivalents; pinned MVCC snapshots make a
// writer invisible; and the whole-query memo distinguishes snapshot
// versions and resolved plan settings instead of aliasing across them.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "base/config.h"
#include "engine/database.h"
#include "engine/session.h"

namespace ccdb {
namespace {

std::string Render(const StatusOr<CalcFResult>& result) {
  if (!result.ok()) return "error: " + result.status().ToString();
  std::string out = result->relation.ToString(result->column_names);
  if (result->has_scalar) {
    out += "|scalar=" + (result->scalar.exact
                             ? result->scalar.exact_value.ToString()
                             : std::to_string(result->scalar.approx_value));
  }
  return out;
}

void DefineFixtures(ConstraintDatabase& db) {
  ASSERT_TRUE(db.Define("S(x, y) := 4*x^2 - y - 20*x + 25 <= 0").ok());
  ASSERT_TRUE(db.Define("D(x, y) := x^2 + y^2 <= 25").ok());
  ASSERT_TRUE(db.Define("L(x, y) := x + y <= 3 and x >= 0 and y >= 0").ok());
}

const std::vector<std::string>& Workload() {
  static const std::vector<std::string> queries = {
      "exists y (S(x, y) and y <= 0)",
      "exists y (D(x, y) and L(x, y))",
      "S(x, y) and D(x, y)",
      "SURFACE[x, y](L(x, y))(z)",
      "forall y (y >= 4*x^2 - 20*x + 25 or not D(x, y))",
  };
  return queries;
}

TEST(SessionTest, OpenSessionAppliesConfigAndAssignsUniqueIds) {
  ConstraintDatabase db;
  EngineConfig off = EngineConfig::Process()
                         .WithPlan(false)
                         .WithQeCache(false)
                         .WithThreads(1);
  EngineConfig on =
      EngineConfig::Process().WithPlan(true).WithQeCache(true).WithThreads(8);

  std::unique_ptr<Session> a = db.OpenSession(off);
  std::unique_ptr<Session> b = db.OpenSession(on);

  std::set<std::uint64_t> ids = {a->id(), b->id()};
  EXPECT_EQ(ids.size(), 2u);
  EXPECT_GT(a->id(), 0u);
  EXPECT_GT(b->id(), a->id()) << "ids are handed out in open order";

  // The session config is authoritative: kOn/kOff, never kAuto.
  EXPECT_EQ(a->options().qe.plan, PlanToggle::kOff);
  EXPECT_EQ(a->options().qe.memo, PlanToggle::kOff);
  EXPECT_EQ(b->options().qe.plan, PlanToggle::kOn);
  EXPECT_EQ(b->options().qe.memo, PlanToggle::kOn);

  // Private pools sized by the config, not by the Shared() singleton.
  ASSERT_NE(a->pool(), nullptr);
  ASSERT_NE(b->pool(), nullptr);
  EXPECT_NE(a->pool(), b->pool());
  EXPECT_EQ(a->pool()->threads(), 1);
  EXPECT_EQ(b->pool()->threads(), 8);
  EXPECT_EQ(a->options().qe.pool, a->pool());

  // Distinct configs, distinct fingerprints.
  EXPECT_NE(a->config_fingerprint(), b->config_fingerprint());
  EXPECT_EQ(a->config_fingerprint(), off.Fingerprint());
}

TEST(SessionTest, ConcurrentMixedConfigSessionsAreByteIdenticalToSerial) {
  // The ISSUE acceptance test: one session at plan-off / 1 thread and one
  // at plan-on / 8 threads run the workload concurrently in one process.
  // Every answer must be byte-identical to its SERIAL EQUIVALENT — a
  // fresh single-threaded database evaluating at the same plan setting.
  // (Plan on vs off may legally render equivalent answers differently on
  // nonlinear corpora; thread count and session machinery never may.)
  ConstraintDatabase db;
  DefineFixtures(db);

  auto serial_at = [](PlanToggle plan) {
    CalcFOptions options;
    options.qe.plan = plan;
    ConstraintDatabase serial(options);
    DefineFixtures(serial);
    std::vector<std::string> out;
    out.reserve(Workload().size());
    for (const std::string& query : Workload()) {
      out.push_back(Render(serial.Query(query)));
    }
    return out;
  };
  const std::vector<std::string> serial_off = serial_at(PlanToggle::kOff);
  const std::vector<std::string> serial_on = serial_at(PlanToggle::kOn);

  std::unique_ptr<Session> slow = db.OpenSession(
      EngineConfig::Process().WithPlan(false).WithThreads(1));
  std::unique_ptr<Session> fast =
      db.OpenSession(EngineConfig::Process().WithPlan(true).WithThreads(8));

  constexpr int kRounds = 3;
  std::vector<std::string> slow_failures, fast_failures;
  auto run = [&](Session* session, const std::vector<std::string>* serial,
                 std::vector<std::string>* failures) {
    for (int round = 0; round < kRounds; ++round) {
      for (std::size_t i = 0; i < Workload().size(); ++i) {
        std::string got = Render(session->Query(Workload()[i]));
        if (got != (*serial)[i]) {
          failures->push_back("round " + std::to_string(round) + " query " +
                              Workload()[i] + ": " + got +
                              " != " + (*serial)[i]);
        }
      }
    }
  };
  std::thread t1(run, slow.get(), &serial_off, &slow_failures);
  std::thread t2(run, fast.get(), &serial_on, &fast_failures);
  t1.join();
  t2.join();

  EXPECT_TRUE(slow_failures.empty()) << slow_failures.front();
  EXPECT_TRUE(fast_failures.empty()) << fast_failures.front();
}

TEST(SessionTest, PinnedSnapshotMakesWriterInvisibleUntilRepin) {
  ConstraintDatabase db;
  ASSERT_TRUE(db.Define("S(x, y) := x + y <= 10 and x >= 0 and y >= 0").ok());
  const std::string query = "exists y (S(x, y) and y <= 1)";
  const std::string before = Render(db.Query(query));

  std::unique_ptr<Session> session = db.OpenSession();
  session->PinSnapshot();
  EXPECT_TRUE(session->pinned());
  const std::uint64_t pinned_version = session->snapshot()->version();

  // The writer widens S and churns another relation; the pinned session
  // keeps answering from its version.
  ASSERT_TRUE(db.Insert("S(x, y) := x + y <= 20 and x >= -5 and y >= 0").ok());
  ASSERT_TRUE(db.Define("T(x) := x <= 1").ok());
  const std::string after = Render(db.Query(query));
  ASSERT_NE(before, after) << "fixture: the insert must change the answer";

  EXPECT_EQ(Render(session->Query(query)), before);
  EXPECT_EQ(session->snapshot()->version(), pinned_version);
  // A pinned session cannot even see relations defined after the pin.
  EXPECT_FALSE(session->Query("T(x) and x >= 0").ok());

  // Re-pinning moves the session to the current version; Unpin returns it
  // to always-current reads.
  session->PinSnapshot();
  EXPECT_GT(session->snapshot()->version(), pinned_version);
  EXPECT_EQ(Render(session->Query(query)), after);
  EXPECT_TRUE(session->Query("T(x) and x >= 0").ok());
  session->Unpin();
  EXPECT_FALSE(session->pinned());
  EXPECT_EQ(Render(session->Query(query)), after);
}

TEST(SessionTest, WholeQueryCacheIsVersionedAcrossPinnedSessions) {
  // Hit-counter assertions for the versioned whole-query memo: a pinned
  // session keeps HITTING its old version's entry after a writer mutates
  // (and keeps getting the old answer), while a fresh-snapshot session
  // MISSES and computes the new answer. The cache key carries the read-set
  // versions, so neither aliases the other.
  ConstraintDatabase db;
  ASSERT_TRUE(db.Define("S(x, y) := x + y <= 10 and x >= 0 and y >= 0").ok());
  const std::string query = "exists y (S(x, y) and y <= 1)";

  EngineConfig config = EngineConfig::Process().WithQeCache(true);
  std::unique_ptr<Session> old_session = db.OpenSession(config);
  old_session->PinSnapshot();

  StatusOr<ExplainResult> miss = old_session->Explain(query);
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss->from_cache) << "first evaluation must be a miss";
  const std::string old_answer =
      miss->result.relation.ToString(miss->result.column_names);

  ASSERT_TRUE(db.Insert("S(x, y) := x + y <= 20 and x >= -5 and y >= 0").ok());

  StatusOr<ExplainResult> hit = old_session->Explain(query);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->from_cache)
      << "pinned session must hit its version's entry after the write";
  EXPECT_EQ(hit->result.relation.ToString(hit->result.column_names),
            old_answer);

  std::unique_ptr<Session> new_session = db.OpenSession(config);
  StatusOr<ExplainResult> fresh = new_session->Explain(query);
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh->from_cache)
      << "new version must be a distinct cache entry";
  EXPECT_NE(fresh->result.relation.ToString(fresh->result.column_names),
            old_answer);

  // And the new version's entry is itself warm now.
  StatusOr<ExplainResult> warm = new_session->Explain(query);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->from_cache);
}

TEST(SessionTest, PlanOnAndPlanOffSessionsDoNotAliasCacheEntries) {
  // The resolved-plan bit is part of the cache key: cached stats carry the
  // plan summary, so a plan-off session must never be served a plan-on
  // entry (and vice versa). Answers still agree byte-for-byte.
  ConstraintDatabase db;
  ASSERT_TRUE(db.Define("S(x, y) := 4*x^2 - y - 20*x + 25 <= 0").ok());
  const std::string query = "exists y (S(x, y) and y <= 0)";

  std::unique_ptr<Session> plan_on =
      db.OpenSession(EngineConfig::Process().WithPlan(true).WithQeCache(true));
  std::unique_ptr<Session> plan_off = db.OpenSession(
      EngineConfig::Process().WithPlan(false).WithQeCache(true));

  StatusOr<ExplainResult> on1 = plan_on->Explain(query);
  ASSERT_TRUE(on1.ok());
  EXPECT_FALSE(on1->from_cache);

  // Same text, same snapshot version — but a different resolved plan bit:
  // the plan-off session must compute, not hit the plan-on entry.
  StatusOr<ExplainResult> off1 = plan_off->Explain(query);
  ASSERT_TRUE(off1.ok());
  EXPECT_FALSE(off1->from_cache) << "plan-off must not hit the plan-on entry";
  EXPECT_EQ(off1->result.relation.ToString(off1->result.column_names),
            on1->result.relation.ToString(on1->result.column_names));

  // Each setting hits its own entry on re-query.
  StatusOr<ExplainResult> on2 = plan_on->Explain(query);
  StatusOr<ExplainResult> off2 = plan_off->Explain(query);
  ASSERT_TRUE(on2.ok());
  ASSERT_TRUE(off2.ok());
  EXPECT_TRUE(on2->from_cache);
  EXPECT_TRUE(off2->from_cache);
}

TEST(SessionTest, SessionFixpointForcesConfiguredDatalogToggles) {
  // Fixpoint under a session forces the semi-naive / incremental toggles
  // from the session config (incremental off here so both sessions compute
  // fresh); both settings reach a byte-identical model, and the stats show
  // which path actually ran (deltas only exist on the semi-naive path).
  ConstraintDatabase db;
  ASSERT_TRUE(
      db.Define("Edge(x, y) := y - x = 1 and x >= 0 and x <= 3").ok());

  DatalogProgram program;
  program.idb_arities["Reach"] = 2;
  {
    DatalogRule rule;
    rule.head = "Reach";
    rule.head_vars = {0, 1};
    rule.body.push_back(DatalogLiteral::Rel("Edge", {0, 1}));
    program.rules.push_back(rule);
  }
  {
    DatalogRule rule;
    rule.head = "Reach";
    rule.head_vars = {0, 1};
    rule.body.push_back(DatalogLiteral::Rel("Reach", {0, 2}));
    rule.body.push_back(DatalogLiteral::Rel("Edge", {2, 1}));
    program.rules.push_back(rule);
  }

  std::unique_ptr<Session> seminaive = db.OpenSession(
      EngineConfig::Process().WithSeminaive(true).WithIncremental(false));
  std::unique_ptr<Session> naive = db.OpenSession(
      EngineConfig::Process().WithSeminaive(false).WithIncremental(false));

  DatalogStats stats_semi, stats_naive;
  auto model_semi = seminaive->Fixpoint(program, {}, &stats_semi);
  auto model_naive = naive->Fixpoint(program, {}, &stats_naive);
  ASSERT_TRUE(model_semi.ok()) << model_semi.status().ToString();
  ASSERT_TRUE(model_naive.ok()) << model_naive.status().ToString();

  ASSERT_EQ(model_semi->count("Reach"), 1u);
  ASSERT_EQ(model_naive->count("Reach"), 1u);
  EXPECT_EQ(model_semi->at("Reach").ToString({"x", "y"}),
            model_naive->at("Reach").ToString({"x", "y"}));
  EXPECT_TRUE(stats_semi.reached_fixpoint);
  EXPECT_TRUE(stats_naive.reached_fixpoint);
  EXPECT_GT(stats_semi.delta_tuples, 0u) << "semi-naive path must have run";
  EXPECT_EQ(stats_naive.delta_tuples, 0u) << "naive path must have run";
}

}  // namespace
}  // namespace ccdb
