#include "arith/interval.h"

#include <random>

#include <gtest/gtest.h>

namespace ccdb {
namespace {

Rational R(std::int64_t n, std::int64_t d = 1) {
  return Rational(BigInt(n), BigInt(d));
}

TEST(IntervalTest, Basics) {
  Interval i(R(-1), R(3));
  EXPECT_EQ(i.Width(), R(4));
  EXPECT_EQ(i.Midpoint(), R(1));
  EXPECT_TRUE(i.Contains(R(0)));
  EXPECT_TRUE(i.Contains(R(-1)));
  EXPECT_TRUE(i.Contains(R(3)));
  EXPECT_FALSE(i.Contains(R(4)));
  EXPECT_TRUE(i.ContainsZero());
  EXPECT_FALSE(i.IsPoint());
  EXPECT_TRUE(Interval(R(2)).IsPoint());
}

TEST(IntervalTest, CertainSign) {
  EXPECT_EQ(Interval(R(1), R(5)).CertainSign(), 1);
  EXPECT_EQ(Interval(R(-5), R(-1)).CertainSign(), -1);
  EXPECT_EQ(Interval(R(0)).CertainSign(), 0);
  EXPECT_EQ(Interval(R(-1), R(1)).CertainSign(), Interval::kAmbiguousSign);
  EXPECT_EQ(Interval(R(0), R(1)).CertainSign(), Interval::kAmbiguousSign);
}

TEST(IntervalTest, AdditionSubtraction) {
  Interval a(R(1), R(2));
  Interval b(R(-3), R(5));
  Interval sum = a + b;
  EXPECT_EQ(sum.lo(), R(-2));
  EXPECT_EQ(sum.hi(), R(7));
  Interval diff = a - b;
  EXPECT_EQ(diff.lo(), R(-4));
  EXPECT_EQ(diff.hi(), R(5));
}

TEST(IntervalTest, MultiplicationSignCases) {
  Interval pos(R(2), R(3));
  Interval neg(R(-4), R(-1));
  Interval mixed(R(-2), R(5));

  Interval pp = pos * pos;
  EXPECT_EQ(pp.lo(), R(4));
  EXPECT_EQ(pp.hi(), R(9));

  Interval pn = pos * neg;
  EXPECT_EQ(pn.lo(), R(-12));
  EXPECT_EQ(pn.hi(), R(-2));

  Interval pm = pos * mixed;
  EXPECT_EQ(pm.lo(), R(-6));
  EXPECT_EQ(pm.hi(), R(15));

  Interval mm = mixed * mixed;
  EXPECT_EQ(mm.lo(), R(-10));
  EXPECT_EQ(mm.hi(), R(25));
}

TEST(IntervalTest, MultiplicationEnclosureRandom) {
  std::mt19937_64 rng(9);
  std::uniform_int_distribution<std::int64_t> dist(-50, 50);
  for (int i = 0; i < 500; ++i) {
    std::int64_t a1 = dist(rng), a2 = dist(rng);
    std::int64_t b1 = dist(rng), b2 = dist(rng);
    Interval a(R(std::min(a1, a2)), R(std::max(a1, a2)));
    Interval b(R(std::min(b1, b2)), R(std::max(b1, b2)));
    Interval product = a * b;
    // Sampled points stay inside the product enclosure.
    for (const Rational& x : {a.lo(), a.hi(), a.Midpoint()}) {
      for (const Rational& y : {b.lo(), b.hi(), b.Midpoint()}) {
        EXPECT_TRUE(product.Contains(x * y));
      }
    }
  }
}

TEST(IntervalTest, PowTighteningAtZero) {
  Interval mixed(R(-2), R(3));
  Interval sq = mixed.Pow(2);
  EXPECT_EQ(sq.lo(), R(0));  // tight bound, not the naive [-6, 9]
  EXPECT_EQ(sq.hi(), R(9));

  Interval cube = mixed.Pow(3);
  EXPECT_EQ(cube.lo(), R(-8));
  EXPECT_EQ(cube.hi(), R(27));

  Interval negsq = Interval(R(-3), R(-2)).Pow(2);
  EXPECT_EQ(negsq.lo(), R(4));
  EXPECT_EQ(negsq.hi(), R(9));

  EXPECT_EQ(mixed.Pow(0).lo(), R(1));
  EXPECT_EQ(mixed.Pow(0).hi(), R(1));
}

TEST(IntervalTest, Scale) {
  Interval i(R(1), R(2));
  Interval scaled = i.Scale(R(-3));
  EXPECT_EQ(scaled.lo(), R(-6));
  EXPECT_EQ(scaled.hi(), R(-3));
  Interval scaled_pos = i.Scale(R(1, 2));
  EXPECT_EQ(scaled_pos.lo(), R(1, 2));
  EXPECT_EQ(scaled_pos.hi(), R(1));
}

TEST(IntervalTest, IntersectsAndContainsInterval) {
  Interval a(R(0), R(2));
  Interval b(R(1), R(3));
  Interval c(R(5), R(6));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(a.Intersects(Interval(R(2))));  // touching endpoint
  EXPECT_TRUE(Interval(R(-1), R(4)).ContainsInterval(a));
  EXPECT_FALSE(a.ContainsInterval(b));
}

}  // namespace
}  // namespace ccdb
