#include "query/parser.h"

#include <gtest/gtest.h>

#include "query/lower.h"

namespace ccdb {
namespace {

Rational R(std::int64_t n, std::int64_t d = 1) {
  return Rational(BigInt(n), BigInt(d));
}

TEST(ParserTest, Terms) {
  auto t = ParseTerm("4*x^2 - y - 20*x + 25");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  VarEnv env;
  auto p = LowerPolynomialTerm(**t, &env);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->DegreeIn(env.indices["x"]), 2u);
  EXPECT_EQ(p->Evaluate({R(5, 2), R(0)}), R(0));
}

TEST(ParserTest, TermPrecedence) {
  VarEnv env;
  auto t = ParseTerm("1 + 2 * 3 ^ 2");
  ASSERT_TRUE(t.ok());
  auto p = LowerPolynomialTerm(**t, &env);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->constant_value(), R(19));

  auto t2 = ParseTerm("(1 + 2) * 3");
  auto p2 = LowerPolynomialTerm(**ParseTerm("(1 + 2) * 3"), &env);
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p2->constant_value(), R(9));
  ASSERT_TRUE(t2.ok());

  auto p3 = LowerPolynomialTerm(**ParseTerm("6 / 4"), &env);
  ASSERT_TRUE(p3.ok());
  EXPECT_EQ(p3->constant_value(), R(3, 2));

  auto p4 = LowerPolynomialTerm(**ParseTerm("-x^2"), &env);
  ASSERT_TRUE(p4.ok());
  EXPECT_EQ(p4->Evaluate({R(3)}), R(-9));
}

TEST(ParserTest, DecimalNumbers) {
  VarEnv env;
  auto p = LowerPolynomialTerm(**ParseTerm("2.5 * x"), &env);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->Evaluate({R(2)}), R(5));
}

TEST(ParserTest, AnalyticFunctionTerm) {
  auto t = ParseTerm("exp(x) + sin(2*x)");
  ASSERT_TRUE(t.ok());
  EXPECT_FALSE((*t)->IsPolynomial());
  EXPECT_NE((*t)->ToString().find("exp"), std::string::npos);
  // Lowering rejects functions in polynomial contexts.
  VarEnv env;
  EXPECT_FALSE(LowerPolynomialTerm(**t, &env).ok());
}

TEST(ParserTest, SimpleFormula) {
  auto f = ParseFormula("x <= y and y < 10 or x = 0");
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  EXPECT_EQ((*f)->kind, QFormula::Kind::kOr);
  auto free_vars = (*f)->FreeVarNames();
  ASSERT_EQ(free_vars.size(), 2u);
  EXPECT_EQ(free_vars[0], "x");
  EXPECT_EQ(free_vars[1], "y");
}

TEST(ParserTest, QuantifiersAndRelations) {
  auto f = ParseFormula("exists y (S(x, y) and y <= 0)");
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  EXPECT_EQ((*f)->kind, QFormula::Kind::kExists);
  auto free_vars = (*f)->FreeVarNames();
  ASSERT_EQ(free_vars.size(), 1u);
  EXPECT_EQ(free_vars[0], "x");

  auto multi = ParseFormula("forall x y (x + y = y + x)");
  ASSERT_TRUE(multi.ok());
  EXPECT_EQ((*multi)->bound_vars.size(), 2u);
  EXPECT_TRUE((*multi)->FreeVarNames().empty());
}

TEST(ParserTest, PaperAggregateSyntax) {
  auto f = ParseFormula("SURFACE[x, y](S(x, y) and y <= 9)(z)");
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  EXPECT_EQ((*f)->kind, QFormula::Kind::kAggregate);
  EXPECT_EQ((*f)->aggregate, AggregateKind::kSurface);
  ASSERT_EQ((*f)->aggregate_vars.size(), 2u);
  EXPECT_EQ((*f)->aggregate_vars[0], "x");
  ASSERT_EQ((*f)->output_vars.size(), 1u);
  EXPECT_EQ((*f)->output_vars[0], "z");
  auto free_vars = (*f)->FreeVarNames();
  ASSERT_EQ(free_vars.size(), 1u);
  EXPECT_EQ(free_vars[0], "z");
}

TEST(ParserTest, NestedParensAndNot) {
  auto f = ParseFormula("not ((x < 0 or x > 1) and y = 2)");
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  EXPECT_EQ((*f)->kind, QFormula::Kind::kNot);
  // Parenthesized TERM on the lhs of a comparison must also parse.
  auto g = ParseFormula("(x + 1) * 2 <= y");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ((*g)->kind, QFormula::Kind::kCompare);
}

TEST(ParserTest, RelationWithConstantArgs) {
  auto f = ParseFormula("S(x, 3)");
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  EXPECT_EQ((*f)->kind, QFormula::Kind::kRelation);
  EXPECT_EQ((*f)->relation_args.size(), 2u);
  EXPECT_EQ((*f)->relation_args[1]->kind, QTerm::Kind::kConst);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseFormula("x <=").ok());
  EXPECT_FALSE(ParseFormula("exists (x < 0)").ok());
  EXPECT_FALSE(ParseFormula("x < 1 <").ok());
  EXPECT_FALSE(ParseFormula("MIN[x](x = 1)").ok());     // missing output
  EXPECT_FALSE(ParseFormula("x # 1").ok());             // bad char
  EXPECT_FALSE(ParseTerm("x ^ y").ok());                // non-natural power
  EXPECT_FALSE(ParseTerm("x +").ok());
}

TEST(ParserTest, RelationDefinitionPaperS) {
  auto def = ParseRelationDef("S(x, y) := 4*x^2 - y - 20*x + 25 <= 0");
  ASSERT_TRUE(def.ok()) << def.status().ToString();
  EXPECT_EQ(def->name, "S");
  EXPECT_EQ(def->relation.arity(), 2);
  EXPECT_TRUE(def->relation.Contains({R(5, 2), R(0)}));
  EXPECT_FALSE(def->relation.Contains({R(0), R(0)}));
}

TEST(ParserTest, RelationDefinitionDisjunctive) {
  auto def = ParseRelationDef(
      "Box(x, y) := (0 <= x and x <= 1 and 0 <= y and y <= 1) or "
      "(2 <= x and x <= 3 and 0 <= y and y <= 1)");
  ASSERT_TRUE(def.ok()) << def.status().ToString();
  EXPECT_EQ(def->relation.tuples().size(), 2u);
  EXPECT_TRUE(def->relation.Contains({R(1, 2), R(1, 2)}));
  EXPECT_TRUE(def->relation.Contains({R(5, 2), R(1, 2)}));
  EXPECT_FALSE(def->relation.Contains({R(3, 2), R(1, 2)}));
}

TEST(ParserTest, RelationDefinitionErrors) {
  // Non-column variable.
  EXPECT_FALSE(ParseRelationDef("R(x) := x <= z").ok());
  // Quantifier not allowed.
  EXPECT_FALSE(ParseRelationDef("R(x) := exists y (x <= y)").ok());
  // Syntax.
  EXPECT_FALSE(ParseRelationDef("R(x) : x <= 1").ok());
  EXPECT_FALSE(ParseRelationDef("R() := 1 <= 2").ok());
}

TEST(ParserTest, FormulaToStringRoundTrips) {
  const char* queries[] = {
      "exists y (S(x, y) and y <= 0)",
      "SURFACE[x, y](S(x, y) and y <= 9)(z)",
      "forall x (x^2 >= 0)",
      "x <= 1 or not (y = 2)",
  };
  for (const char* text : queries) {
    auto f = ParseFormula(text);
    ASSERT_TRUE(f.ok()) << text;
    auto reparsed = ParseFormula((*f)->ToString());
    ASSERT_TRUE(reparsed.ok())
        << text << " -> " << (*f)->ToString() << ": "
        << reparsed.status().ToString();
    EXPECT_EQ((*reparsed)->ToString(), (*f)->ToString());
  }
}

}  // namespace
}  // namespace ccdb
