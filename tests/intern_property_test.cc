// Property/fuzz tests for the hash-consed IR: canonicalization is
// idempotent, construction-time normalization preserves semantics (checked
// differentially against a shadow tree that evaluates the raw, un-normalized
// atoms), structurally equal formulas intern to one node (also under
// concurrent construction — the TSan CI leg exercises the arena locks), and
// the negated-operator normalization regression: ¬(p < 0) and p >= 0 must be
// the same interned atom.

#include <memory>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "constraint/formula.h"
#include "poly/polynomial.h"

namespace ccdb {
namespace {

Rational R(std::int64_t n, std::int64_t d = 1) {
  return Rational(BigInt(n), BigInt(d));
}

// Shadow of a formula built exactly as the random generator asked, with no
// canonicalization anywhere: the atom stores the raw polynomial/operator
// pair, and evaluation is textbook connective semantics over raw sign
// tests. Differential oracle for the construction-time normalization.
struct Shadow {
  enum Kind { kAtom, kNot, kAnd, kOr } kind;
  Polynomial poly;
  RelOp op = RelOp::kEq;
  std::vector<std::unique_ptr<Shadow>> children;

  bool EvaluateAt(const std::vector<Rational>& point) const {
    switch (kind) {
      case kAtom:
        return SignSatisfies(poly.Evaluate(point).sign(), op);
      case kNot:
        return !children[0]->EvaluateAt(point);
      case kAnd:
        for (const auto& child : children) {
          if (!child->EvaluateAt(point)) return false;
        }
        return true;
      case kOr:
        for (const auto& child : children) {
          if (child->EvaluateAt(point)) return true;
        }
        return false;
    }
    return false;
  }
};

// Builds a random quantifier-free formula and its shadow simultaneously.
Formula RandomFormula(std::mt19937_64* rng, int depth,
                      std::unique_ptr<Shadow>* shadow) {
  if (depth == 0 || (*rng)() % 4 == 0) {
    std::uniform_int_distribution<std::int64_t> coeff(-4, 4);
    // Non-primitive, possibly negative-leading polynomials on purpose —
    // the canonicalizer must gcd-reduce and sign-normalize them.
    Polynomial p = Polynomial(2 * coeff(*rng)) * Polynomial::Var(0) +
                   Polynomial(2 * coeff(*rng)) * Polynomial::Var(1) +
                   Polynomial(coeff(*rng)) * Polynomial::Var(0) *
                       Polynomial::Var(1) +
                   Polynomial(coeff(*rng));
    RelOp ops[] = {RelOp::kLt, RelOp::kLe, RelOp::kEq,
                   RelOp::kNeq, RelOp::kGe, RelOp::kGt};
    RelOp op = ops[(*rng)() % 6];
    *shadow = std::make_unique<Shadow>();
    (*shadow)->kind = Shadow::kAtom;
    (*shadow)->poly = p;
    (*shadow)->op = op;
    return Formula::MakeAtom(Atom(p, op));
  }
  switch ((*rng)() % 3) {
    case 0: {
      std::unique_ptr<Shadow> child;
      Formula f = Formula::Not(RandomFormula(rng, depth - 1, &child));
      *shadow = std::make_unique<Shadow>();
      (*shadow)->kind = Shadow::kNot;
      (*shadow)->children.push_back(std::move(child));
      return f;
    }
    case 1: {
      std::unique_ptr<Shadow> a, b;
      Formula f = Formula::And(RandomFormula(rng, depth - 1, &a),
                               RandomFormula(rng, depth - 1, &b));
      *shadow = std::make_unique<Shadow>();
      (*shadow)->kind = Shadow::kAnd;
      (*shadow)->children.push_back(std::move(a));
      (*shadow)->children.push_back(std::move(b));
      return f;
    }
    default: {
      std::unique_ptr<Shadow> a, b;
      Formula f = Formula::Or(RandomFormula(rng, depth - 1, &a),
                              RandomFormula(rng, depth - 1, &b));
      *shadow = std::make_unique<Shadow>();
      (*shadow)->kind = Shadow::kOr;
      (*shadow)->children.push_back(std::move(a));
      (*shadow)->children.push_back(std::move(b));
      return f;
    }
  }
}

// Rebuilds a formula from its observable structure through the public
// constructors. Because construction canonicalizes, rebuild(f) == f states
// that canonicalization is idempotent (a fixed point of itself).
Formula Rebuild(const Formula& f) {
  switch (f.kind()) {
    case Formula::Kind::kTrue:
      return Formula::True();
    case Formula::Kind::kFalse:
      return Formula::False();
    case Formula::Kind::kAtom:
      return Formula::MakeAtom(f.atom());
    case Formula::Kind::kRelation:
      return Formula::Relation(f.relation_name(), f.relation_args());
    case Formula::Kind::kNot:
      return Formula::Not(Rebuild(f.children()[0]));
    case Formula::Kind::kAnd: {
      std::vector<Formula> children;
      for (const Formula& child : f.children()) {
        children.push_back(Rebuild(child));
      }
      return Formula::And(children);
    }
    case Formula::Kind::kOr: {
      std::vector<Formula> children;
      for (const Formula& child : f.children()) {
        children.push_back(Rebuild(child));
      }
      return Formula::Or(children);
    }
    case Formula::Kind::kExists:
      return Formula::Exists(f.quantified_var(), Rebuild(f.children()[0]));
    case Formula::Kind::kForall:
      return Formula::Forall(f.quantified_var(), Rebuild(f.children()[0]));
  }
  return Formula::True();
}

class InternPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(InternPropertyTest, CanonicalizationIsIdempotent) {
  std::mt19937_64 rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    std::unique_ptr<Shadow> shadow;
    Formula f = RandomFormula(&rng, 3, &shadow);
    Formula rebuilt = Rebuild(f);
    EXPECT_TRUE(f == rebuilt) << f.ToString({"x", "y"});
    EXPECT_EQ(f.id(), rebuilt.id());
    if (f.kind() == Formula::Kind::kAtom) {
      Atom once = f.atom().Canonical();
      Atom twice = once.Canonical();
      EXPECT_TRUE(once == twice);
    }
  }
}

TEST_P(InternPropertyTest, NormalizationPreservesTruthDifferentially) {
  std::mt19937_64 rng(1000 + GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    std::unique_ptr<Shadow> shadow;
    Formula f = RandomFormula(&rng, 3, &shadow);
    for (std::int64_t xi = -4; xi <= 4; ++xi) {
      for (std::int64_t yi = -3; yi <= 3; ++yi) {
        std::vector<Rational> point{R(xi, 2), R(yi, 3)};
        EXPECT_EQ(shadow->EvaluateAt(point), f.EvaluateAt(point))
            << f.ToString({"x", "y"});
      }
    }
  }
}

TEST_P(InternPropertyTest, StructurallyEqualFormulasShareOneNode) {
  std::mt19937_64 rng(2000 + GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    std::unique_ptr<Shadow> shadow;
    std::mt19937_64 rng_copy = rng;  // same stream -> same formula
    Formula a = RandomFormula(&rng, 3, &shadow);
    Formula b = RandomFormula(&rng_copy, 3, &shadow);
    EXPECT_TRUE(a == b);
    EXPECT_EQ(a.id(), b.id());
    EXPECT_EQ(a.Hash(), b.Hash());
  }
}

TEST(InternConcurrencyTest, ConcurrentConstructionInternsUniquely) {
  // Every thread builds the same seeded formulas and keeps them alive;
  // since ids are never reused and the formulas coexist, hash-consing
  // must give every thread the same node (same id) at each index. Under
  // the TSan CI leg this also exercises the arena's shard locking.
  constexpr int kThreads = 8;
  constexpr int kFormulas = 40;
  std::vector<std::vector<Formula>> built(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &built] {
      std::mt19937_64 rng(12345);
      built[t].reserve(kFormulas);
      for (int i = 0; i < kFormulas; ++i) {
        std::unique_ptr<Shadow> shadow;
        built[t].push_back(RandomFormula(&rng, 3, &shadow));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 1; t < kThreads; ++t) {
    for (int i = 0; i < kFormulas; ++i) {
      EXPECT_TRUE(built[0][i] == built[t][i]);
      EXPECT_EQ(built[0][i].id(), built[t][i].id());
    }
  }
}

TEST(NegatedOpNormalizationTest, NegatedLtIsGe) {
  // Regression: ¬(p < 0) must be the SAME interned atom as p >= 0 — the
  // two spellings used to normalize differently.
  Polynomial p = Polynomial::Var(0) - Polynomial(3);
  Formula not_lt = Formula::Not(Formula::MakeAtom(Atom(p, RelOp::kLt)));
  Formula ge = Formula::MakeAtom(Atom(p, RelOp::kGe));
  EXPECT_TRUE(not_lt == ge);
  EXPECT_EQ(not_lt.id(), ge.id());
  EXPECT_EQ(not_lt.kind(), Formula::Kind::kAtom);
}

TEST(NegatedOpNormalizationTest, SignFlipUnifiesMirroredAtoms) {
  // -p < 0 and p > 0 are one atom; x < y and y > x are one formula; and
  // scaling never splits an equivalence class.
  Polynomial x = Polynomial::Var(0), y = Polynomial::Var(1);
  EXPECT_TRUE(Atom(-x, RelOp::kLt).Canonical() ==
              Atom(x, RelOp::kGt).Canonical());
  EXPECT_TRUE(Formula::Compare(x, RelOp::kLt, y) ==
              Formula::Compare(y, RelOp::kGt, x));
  EXPECT_TRUE(Formula::Compare(Polynomial(6) * x, RelOp::kLe,
                               Polynomial(6) * y) ==
              Formula::Compare(x, RelOp::kLe, y));
}

TEST(NegatedOpNormalizationTest, DoubleNegationFolds) {
  Polynomial p = Polynomial::Var(0) * Polynomial::Var(0) - Polynomial(2);
  Formula atom = Formula::MakeAtom(Atom(p, RelOp::kLe));
  EXPECT_TRUE(Formula::Not(Formula::Not(atom)) == atom);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InternPropertyTest,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace ccdb
