// Semi-naive / incremental differential tests: the delta-driven fixpoint
// is a pure optimization, so its output must be BYTE-IDENTICAL to the
// naive executable spec across CCDB_SEMINAIVE x CCDB_PLAN x thread count
// on every corpus — transitive closure, same-generation, mutual
// recursion, and constraint-heavy bodies — and the incremental resume
// path (ConstraintDatabase::Fixpoint after Insert) must reproduce the
// from-scratch fixpoint tuple-for-tuple under randomized insert
// sequences.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/memo.h"
#include "base/metrics.h"
#include "base/thread_pool.h"
#include "datalog/datalog.h"
#include "engine/database.h"
#include "plan/planner.h"

namespace ccdb {
namespace {

Rational R(std::int64_t n, std::int64_t d = 1) {
  return Rational(BigInt(n), BigInt(d));
}

Polynomial V(int i) { return Polynomial::Var(i); }

// Saves the process-wide toggles and restores them on scope exit, so the
// matrix sweeps below never leak state into other tests.
class ToggleGuard {
 public:
  ToggleGuard()
      : seminaive_(SeminaiveEnabled()),
        incremental_(IncrementalEnabled()),
        plan_(PlannerEnabled()),
        memo_(MemoCachesEnabled()) {}
  ~ToggleGuard() {
    SetSeminaiveEnabled(seminaive_);
    SetIncrementalEnabled(incremental_);
    SetPlannerEnabled(plan_);
    SetMemoCachesEnabled(memo_);
  }

 private:
  bool seminaive_;
  bool incremental_;
  bool plan_;
  bool memo_;
};

// y = x + 1 over lo <= x <= hi: one "successor" segment.
GeneralizedTuple SuccessorSegment(std::int64_t lo, std::int64_t hi) {
  GeneralizedTuple t;
  t.atoms.emplace_back(V(1) - V(0) - Polynomial(1), RelOp::kEq);
  t.atoms.emplace_back(Polynomial(lo) - V(0), RelOp::kLe);
  t.atoms.emplace_back(V(0) - Polynomial(hi), RelOp::kLe);
  return t;
}

ConstraintRelation SegmentEdge(std::int64_t lo, std::int64_t hi) {
  ConstraintRelation edge(2);
  edge.AddTuple(SuccessorSegment(lo, hi));
  return edge;
}

// Corpus 1: linear transitive closure of a successor segment.
DatalogProgram TransitiveClosure() {
  DatalogProgram program;
  program.idb_arities["Reach"] = 2;
  {
    DatalogRule rule;
    rule.head = "Reach";
    rule.head_vars = {0, 1};
    rule.body.push_back(DatalogLiteral::Rel("Edge", {0, 1}));
    program.rules.push_back(rule);
  }
  {
    DatalogRule rule;
    rule.head = "Reach";
    rule.head_vars = {0, 1};
    rule.body.push_back(DatalogLiteral::Rel("Reach", {0, 2}));
    rule.body.push_back(DatalogLiteral::Rel("Edge", {2, 1}));
    program.rules.push_back(rule);
  }
  return program;
}

// Corpus 2: same-generation over Up/Down segments — two recursive
// occurrences of SG never appear, but the recursive literal sits between
// two EDB literals (exercises the delta rewrite's position bookkeeping).
DatalogProgram SameGeneration() {
  DatalogProgram program;
  program.idb_arities["SG"] = 2;
  {
    // Base: the diagonal over [0, 3].
    DatalogRule rule;
    rule.head = "SG";
    rule.head_vars = {0, 1};
    rule.body.push_back(
        DatalogLiteral::Constraint(Atom(V(0) - V(1), RelOp::kEq)));
    rule.body.push_back(DatalogLiteral::Constraint(Atom(-V(0), RelOp::kLe)));
    rule.body.push_back(
        DatalogLiteral::Constraint(Atom(V(0) - Polynomial(3), RelOp::kLe)));
    program.rules.push_back(rule);
  }
  {
    // SG(x, y) :- Up(x, u), SG(u, v), Up(y, v).
    DatalogRule rule;
    rule.head = "SG";
    rule.head_vars = {0, 1};
    rule.body.push_back(DatalogLiteral::Rel("Up", {0, 2}));
    rule.body.push_back(DatalogLiteral::Rel("SG", {2, 3}));
    rule.body.push_back(DatalogLiteral::Rel("Up", {1, 3}));
    program.rules.push_back(rule);
  }
  return program;
}

// Corpus 3: mutually recursive Even/Odd over the successor segment — two
// IDB relations feeding each other, so each round's delta of one relation
// drives the other's rules.
DatalogProgram MutualRecursion() {
  DatalogProgram program;
  program.idb_arities["Ev"] = 1;
  program.idb_arities["Od"] = 1;
  {
    DatalogRule rule;  // Ev(0).
    rule.head = "Ev";
    rule.head_vars = {0};
    rule.body.push_back(DatalogLiteral::Constraint(Atom(V(0), RelOp::kEq)));
    program.rules.push_back(rule);
  }
  {
    DatalogRule rule;  // Od(y) :- Ev(x), Edge(x, y).
    rule.head = "Od";
    rule.head_vars = {1};
    rule.body.push_back(DatalogLiteral::Rel("Ev", {0}));
    rule.body.push_back(DatalogLiteral::Rel("Edge", {0, 1}));
    program.rules.push_back(rule);
  }
  {
    DatalogRule rule;  // Ev(y) :- Od(x), Edge(x, y).
    rule.head = "Ev";
    rule.head_vars = {1};
    rule.body.push_back(DatalogLiteral::Rel("Od", {0}));
    rule.body.push_back(DatalogLiteral::Rel("Edge", {0, 1}));
    program.rules.push_back(rule);
  }
  return program;
}

// Corpus 4: constraint-heavy quadratic-rule closure — TWO recursive
// occurrences in one body (the delta rewrite unions over occurrence
// choices with @old slices) plus polynomial guards.
DatalogProgram QuadraticClosure() {
  DatalogProgram program;
  program.idb_arities["C"] = 2;
  {
    DatalogRule rule;
    rule.head = "C";
    rule.head_vars = {0, 1};
    rule.body.push_back(DatalogLiteral::Rel("Edge", {0, 1}));
    program.rules.push_back(rule);
  }
  {
    // C(x, y) :- C(x, z), C(z, y), x^2 <= 16, y <= 5.
    DatalogRule rule;
    rule.head = "C";
    rule.head_vars = {0, 1};
    rule.body.push_back(DatalogLiteral::Rel("C", {0, 2}));
    rule.body.push_back(DatalogLiteral::Rel("C", {2, 1}));
    rule.body.push_back(DatalogLiteral::Constraint(
        Atom(V(0) * V(0) - Polynomial(16), RelOp::kLe)));
    rule.body.push_back(
        DatalogLiteral::Constraint(Atom(V(1) - Polynomial(5), RelOp::kLe)));
    program.rules.push_back(rule);
  }
  return program;
}

struct Corpus {
  const char* name;
  DatalogProgram program;
  std::map<std::string, ConstraintRelation> edb;
};

std::vector<Corpus> Corpora() {
  std::vector<Corpus> corpora;
  corpora.push_back({"transitive_closure", TransitiveClosure(), {}});
  corpora.back().edb.emplace("Edge", SegmentEdge(0, 3));
  corpora.push_back({"same_generation", SameGeneration(), {}});
  corpora.back().edb.emplace("Up", SegmentEdge(0, 2));
  corpora.push_back({"mutual_recursion", MutualRecursion(), {}});
  corpora.back().edb.emplace("Edge", SegmentEdge(0, 4));
  corpora.push_back({"quadratic_closure", QuadraticClosure(), {}});
  corpora.back().edb.emplace("Edge", SegmentEdge(0, 3));
  return corpora;
}

// Verbatim rendering: tuple order included — the byte-identity contract.
std::string Fingerprint(const std::map<std::string, ConstraintRelation>& idb) {
  std::string out;
  for (const auto& [name, relation] : idb) {
    out += name + ": " + relation.ToString() + "\n";
  }
  return out;
}

// Semantic differential for the incremental path: a resumed fixpoint may
// carve the same point set into syntactically different generalized
// tuples than a cold run (derivations arrive in a different order, so
// different redundant tuples get dropped), so the contract there is
// EXTENSIONAL equality — probed on a dense rational grid covering the
// closure's support and its boundary half-points.
void ExpectSameBinaryRelation(const ConstraintRelation& got,
                              const ConstraintRelation& want,
                              const std::string& context) {
  for (int xi = -2; xi <= 22; ++xi) {
    for (int yi = -2; yi <= 22; ++yi) {
      Rational x = R(xi, 2);
      Rational y = R(yi, 2);
      bool g = got.Contains({x, y});
      bool w = want.Contains({x, y});
      if (g != w) {
        ADD_FAILURE() << context << ": diverge at (" << x.ToString() << ", "
                      << y.ToString() << "): incremental=" << g
                      << " cold=" << w;
        return;
      }
    }
  }
}

TEST(SeminaiveDifferentialTest, ByteIdenticalAcrossSeminaivePlanThreads) {
  ToggleGuard guard;
  for (Corpus& corpus : Corpora()) {
    // Baseline: naive, no planner, serial.
    std::string baseline;
    for (bool seminaive : {false, true}) {
      for (bool plan : {false, true}) {
        for (int threads : {1, 2, 8}) {
          SetSeminaiveEnabled(seminaive);
          SetPlannerEnabled(plan);
          ThreadPool pool(threads);
          DatalogOptions options;
          options.qe.pool = &pool;
          DatalogStats stats;
          auto result =
              EvaluateDatalog(corpus.program, corpus.edb, options, &stats);
          ASSERT_TRUE(result.ok())
              << corpus.name << ": " << result.status().ToString();
          EXPECT_TRUE(stats.reached_fixpoint) << corpus.name;
          std::string fp = Fingerprint(*result);
          if (baseline.empty()) {
            baseline = fp;
          } else {
            EXPECT_EQ(fp, baseline)
                << corpus.name << " diverged at seminaive=" << seminaive
                << " plan=" << plan << " threads=" << threads;
          }
          // Semi-naive must actually engage on these recursive corpora
          // (multiple rounds -> nonzero deltas), or the matrix proves
          // nothing.
          if (seminaive && stats.iterations > 1) {
            EXPECT_GT(stats.delta_tuples, 0u) << corpus.name;
          }
        }
      }
    }
  }
}

TEST(SeminaiveDifferentialTest, ExplicitOptionOverridesProcessToggle) {
  ToggleGuard guard;
  Corpus corpus = Corpora()[0];
  SetSeminaiveEnabled(false);
  DatalogOptions forced_on;
  forced_on.seminaive = PlanToggle::kOn;
  DatalogStats on_stats;
  auto on = EvaluateDatalog(corpus.program, corpus.edb, forced_on, &on_stats);
  ASSERT_TRUE(on.ok()) << on.status().ToString();
  EXPECT_GT(on_stats.delta_tuples, 0u) << "kOn must run the delta path";

  SetSeminaiveEnabled(true);
  DatalogOptions forced_off;
  forced_off.seminaive = PlanToggle::kOff;
  DatalogStats off_stats;
  auto off =
      EvaluateDatalog(corpus.program, corpus.edb, forced_off, &off_stats);
  ASSERT_TRUE(off.ok()) << off.status().ToString();
  EXPECT_EQ(off_stats.delta_tuples, 0u) << "kOff must run the naive path";
  EXPECT_EQ(Fingerprint(*on), Fingerprint(*off));
}

TEST(SeminaiveDifferentialTest, ResumeMatchesRecomputeUnderInsertSequences) {
  ToggleGuard guard;
  SetSeminaiveEnabled(true);
  SetIncrementalEnabled(true);
  // The materialized-fixpoint state sits behind the memo master switch;
  // pin it on so a CCDB_QE_CACHE=0 CI leg still exercises the resume
  // path this test is about.
  SetMemoCachesEnabled(true);

  ConstraintDatabase db;
  ASSERT_TRUE(
      db.Define("Edge(x, y) := y - x - 1 = 0 and x >= 0 and x <= 2").ok());
  DatalogProgram program = TransitiveClosure();

  Counter* resumes =
      MetricsRegistry::Global().GetCounter("datalog_fixpoint_resumes");

  // Cold fixpoint, then a deterministic pseudo-random sequence of
  // append-only segment inserts; after each, the resumed fixpoint must
  // equal a from-scratch recompute over the same catalog state.
  auto warm = db.Fixpoint(program);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();

  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
  std::uint64_t resumed_before = resumes->value();
  for (int step = 0; step < 4; ++step) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    std::int64_t lo = static_cast<std::int64_t>((rng >> 33) % 7);
    std::int64_t hi = lo + 1 + static_cast<std::int64_t>((rng >> 21) % 3);
    std::string segment = "Edge(x, y) := y - x - 1 = 0 and x >= " +
                          std::to_string(lo) +
                          " and x <= " + std::to_string(hi);
    ASSERT_TRUE(db.Insert(segment).ok()) << segment;

    DatalogStats incremental_stats;
    auto incremental = db.Fixpoint(program, {}, &incremental_stats);
    ASSERT_TRUE(incremental.ok()) << incremental.status().ToString();

    // From-scratch reference over the identical catalog state.
    auto edge = db.Relation("Edge");
    ASSERT_TRUE(edge.ok());
    std::map<std::string, ConstraintRelation> edb;
    edb.emplace("Edge", *edge);
    auto cold = EvaluateDatalog(program, edb);
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();

    ExpectSameBinaryRelation(incremental->at("Reach"), cold->at("Reach"),
                             "step " + std::to_string(step) + " after " +
                                 segment);
  }
  EXPECT_GT(resumes->value(), resumed_before)
      << "the insert sequence must exercise the RESUME path, not silent "
       "recomputes";

  // With incremental off, the same call still answers (recompute path).
  SetIncrementalEnabled(false);
  auto recomputed = db.Fixpoint(program);
  ASSERT_TRUE(recomputed.ok()) << recomputed.status().ToString();
  auto edge = db.Relation("Edge");
  ASSERT_TRUE(edge.ok());
  std::map<std::string, ConstraintRelation> edb;
  edb.emplace("Edge", *edge);
  auto cold = EvaluateDatalog(program, edb);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(Fingerprint(*recomputed), Fingerprint(*cold));
}

TEST(SeminaiveDifferentialTest, ResumeRefusesNegationAndPrecision) {
  // The resume entry points must reject what they cannot evaluate
  // soundly: negated literals (inflationary negation is not monotone in
  // the EDB) and Z_k runs (the bit-length verdict needs naive rounds).
  DatalogProgram negated;
  negated.idb_arities["P"] = 1;
  DatalogRule rule;
  rule.head = "P";
  rule.head_vars = {0};
  rule.body.push_back(DatalogLiteral::Rel("Q", {0}, /*negated=*/true));
  negated.rules.push_back(rule);
  negated.idb_arities["Q"] = 1;

  DatalogFixpointState state;
  auto refused = ResumeDatalog(negated, {}, &state);
  EXPECT_FALSE(refused.ok());

  DatalogProgram tc = TransitiveClosure();
  std::map<std::string, ConstraintRelation> edb;
  edb.emplace("Edge", SegmentEdge(0, 2));
  DatalogOptions zk;
  zk.precision_k = 64;
  DatalogFixpointState tc_state;
  auto zk_refused = ResumeDatalog(tc, edb, &tc_state, zk);
  EXPECT_FALSE(zk_refused.ok());
}

}  // namespace
}  // namespace ccdb
