#include "agg/aggregates.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ccdb {
namespace {

Rational R(std::int64_t n, std::int64_t d = 1) {
  return Rational(BigInt(n), BigInt(d));
}

Polynomial X() { return Polynomial::Var(0); }
Polynomial Y() { return Polynomial::Var(1); }
Polynomial Z() { return Polynomial::Var(2); }

ConstraintRelation UnaryInterval(const Rational& lo, const Rational& hi) {
  ConstraintRelation rel(1);
  GeneralizedTuple tuple;
  tuple.atoms.emplace_back(Polynomial(lo) - X(), RelOp::kLe);
  tuple.atoms.emplace_back(X() - Polynomial(hi), RelOp::kLe);
  rel.AddTuple(std::move(tuple));
  return rel;
}

ConstraintRelation FinitePoints(std::initializer_list<Rational> values) {
  ConstraintRelation rel(1);
  for (const Rational& v : values) {
    GeneralizedTuple tuple;
    tuple.atoms.emplace_back(X() - Polynomial(v), RelOp::kEq);
    rel.AddTuple(std::move(tuple));
  }
  return rel;
}

// The paper's Example 5.1/5.4 region: S(x,y) ∧ y <= 9 where
// S = 4x^2 - y - 20x + 25 <= 0. Its area is exactly 18.
ConstraintRelation PaperSurfaceRegion() {
  ConstraintRelation rel(2);
  GeneralizedTuple tuple;
  tuple.atoms.emplace_back(
      Polynomial(4) * X().Pow(2) - Y() - Polynomial(20) * X() + Polynomial(25),
      RelOp::kLe);
  tuple.atoms.emplace_back(Y() - Polynomial(9), RelOp::kLe);
  rel.AddTuple(std::move(tuple));
  return rel;
}

TEST(AggregateTest, KindPlumbing) {
  EXPECT_TRUE(AggregateKindFromName("SURFACE").ok());
  EXPECT_FALSE(AggregateKindFromName("MEDIAN").ok());
  EXPECT_EQ(AggregateInputArity(AggregateKind::kSurface), 2);
  EXPECT_EQ(AggregateInputArity(AggregateKind::kVolume), 3);
  EXPECT_EQ(AggregateInputArity(AggregateKind::kMin), 1);
  EXPECT_STREQ(AggregateKindName(AggregateKind::kAvg), "AVG");
}

TEST(AggregateTest, MinMaxClosedInterval) {
  AggregateModules modules;
  ConstraintRelation rel = UnaryInterval(R(-3), R(7));
  auto min = modules.Min(rel);
  ASSERT_TRUE(min.ok()) << min.status().ToString();
  EXPECT_TRUE(min->exact);
  EXPECT_EQ(min->exact_value, R(-3));
  auto max = modules.Max(rel);
  ASSERT_TRUE(max.ok());
  EXPECT_EQ(max->exact_value, R(7));
}

TEST(AggregateTest, MinUndefinedForOpenOrUnbounded) {
  AggregateModules modules;
  // Open interval: 0 < x < 1.
  ConstraintRelation open(1);
  GeneralizedTuple tuple;
  tuple.atoms.emplace_back(-X(), RelOp::kLt);
  tuple.atoms.emplace_back(X() - Polynomial(1), RelOp::kLt);
  open.AddTuple(std::move(tuple));
  auto min = modules.Min(open);
  EXPECT_FALSE(min.ok());
  EXPECT_EQ(min.status().code(), StatusCode::kUndefined);

  // Unbounded below: x <= 0.
  ConstraintRelation unbounded(1);
  GeneralizedTuple t2;
  t2.atoms.emplace_back(X(), RelOp::kLe);
  unbounded.AddTuple(std::move(t2));
  EXPECT_FALSE(modules.Min(unbounded).ok());
  // But MAX of the same set exists: 0.
  auto max = modules.Max(unbounded);
  ASSERT_TRUE(max.ok());
  EXPECT_EQ(max->exact_value, R(0));
}

TEST(AggregateTest, MinOfIrrationalEndpoint) {
  // x^2 <= 2: min is -sqrt(2), reported approximately.
  AggregateModules modules(1e-9);
  ConstraintRelation rel(1);
  GeneralizedTuple tuple;
  tuple.atoms.emplace_back(X().Pow(2) - Polynomial(2), RelOp::kLe);
  rel.AddTuple(std::move(tuple));
  auto min = modules.Min(rel);
  ASSERT_TRUE(min.ok());
  EXPECT_FALSE(min->exact);
  EXPECT_NEAR(min->Value(), -std::sqrt(2.0), 1e-8);
}

TEST(AggregateTest, AvgFiniteSet) {
  AggregateModules modules;
  auto avg = modules.Avg(FinitePoints({R(1), R(2), R(6)}));
  ASSERT_TRUE(avg.ok());
  EXPECT_TRUE(avg->exact);
  EXPECT_EQ(avg->exact_value, R(3));
}

TEST(AggregateTest, AvgOfInterval) {
  AggregateModules modules;
  auto avg = modules.Avg(UnaryInterval(R(2), R(6)));
  ASSERT_TRUE(avg.ok());
  EXPECT_TRUE(avg->exact);
  EXPECT_EQ(avg->exact_value, R(4));
  // Union of [0,2] and [4,6]: mean = (2 + 10)/ (2+2)... moment: (2-0)(1) +
  // (6-4)(5) = 2 + 10 = 12, measure 4, avg 3.
  ConstraintRelation uni = UnaryInterval(R(0), R(2));
  ConstraintRelation second = UnaryInterval(R(4), R(6));
  for (const auto& t : second.tuples()) {
    uni.AddTuple(t);
  }
  auto avg2 = modules.Avg(uni);
  ASSERT_TRUE(avg2.ok());
  EXPECT_EQ(avg2->exact_value, R(3));
}

TEST(AggregateTest, AvgUndefinedCases) {
  AggregateModules modules;
  EXPECT_EQ(modules.Avg(ConstraintRelation(1)).status().code(),
            StatusCode::kUndefined);
  ConstraintRelation unbounded(1);
  GeneralizedTuple t;
  t.atoms.emplace_back(X(), RelOp::kGe);
  unbounded.AddTuple(std::move(t));
  EXPECT_EQ(modules.Avg(unbounded).status().code(), StatusCode::kUndefined);
}

TEST(AggregateTest, LengthUnionOfIntervals) {
  AggregateModules modules;
  ConstraintRelation uni = UnaryInterval(R(0), R(1));
  ConstraintRelation second = UnaryInterval(R(5), R(7));
  for (const auto& t : second.tuples()) uni.AddTuple(t);
  auto length = modules.Length(uni);
  ASSERT_TRUE(length.ok());
  EXPECT_TRUE(length->exact);
  EXPECT_EQ(length->exact_value, R(3));
  // Points have measure zero.
  auto zero = modules.Length(FinitePoints({R(1), R(5)}));
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(zero->exact_value, R(0));
}

TEST(AggregateTest, LengthIrrationalEndpoints) {
  AggregateModules modules(1e-10);
  ConstraintRelation rel(1);
  GeneralizedTuple tuple;
  tuple.atoms.emplace_back(X().Pow(2) - Polynomial(2), RelOp::kLe);
  rel.AddTuple(std::move(tuple));
  auto length = modules.Length(rel);
  ASSERT_TRUE(length.ok());
  EXPECT_NEAR(length->Value(), 2.0 * std::sqrt(2.0), 1e-8);
}

TEST(AggregateTest, SurfacePaperExampleExactly18) {
  // The headline example of the paper: SURFACE(S ∧ y<=9) = 18, computed
  // EXACTLY by the graph-boundary fast path.
  AggregateModules modules;
  auto area = modules.Surface(PaperSurfaceRegion());
  ASSERT_TRUE(area.ok()) << area.status().ToString();
  EXPECT_TRUE(area->exact);
  EXPECT_EQ(area->exact_value, R(18));
}

TEST(AggregateTest, SurfaceTriangle) {
  // The paper's Section 3 triangle: x<=y, x>=0, y<=10. Area = 50.
  AggregateModules modules;
  ConstraintRelation rel(2);
  GeneralizedTuple tuple;
  tuple.atoms.emplace_back(X() - Y(), RelOp::kLe);
  tuple.atoms.emplace_back(-X(), RelOp::kLe);
  tuple.atoms.emplace_back(Y() - Polynomial(10), RelOp::kLe);
  rel.AddTuple(std::move(tuple));
  auto area = modules.Surface(rel);
  ASSERT_TRUE(area.ok()) << area.status().ToString();
  EXPECT_TRUE(area->exact);
  EXPECT_EQ(area->exact_value, R(50));
}

TEST(AggregateTest, SurfaceUnitDiskNumeric) {
  // Unit disk: area pi (numeric path — circle is not a y-graph).
  AggregateModules modules(1e-6);
  ConstraintRelation rel(2);
  GeneralizedTuple tuple;
  tuple.atoms.emplace_back(X().Pow(2) + Y().Pow(2) - Polynomial(1), RelOp::kLe);
  rel.AddTuple(std::move(tuple));
  auto area = modules.Surface(rel);
  ASSERT_TRUE(area.ok()) << area.status().ToString();
  EXPECT_FALSE(area->exact);
  EXPECT_NEAR(area->Value(), M_PI, 1e-3);
}

TEST(AggregateTest, SurfaceUnboundedUndefined) {
  AggregateModules modules;
  ConstraintRelation rel(2);
  GeneralizedTuple tuple;
  tuple.atoms.emplace_back(Y() - X(), RelOp::kLe);  // half plane
  rel.AddTuple(std::move(tuple));
  auto area = modules.Surface(rel);
  EXPECT_FALSE(area.ok());
  EXPECT_EQ(area.status().code(), StatusCode::kUndefined);
}

TEST(AggregateTest, SurfaceEmptyRegionZero) {
  AggregateModules modules;
  ConstraintRelation rel(2);
  GeneralizedTuple tuple;
  tuple.atoms.emplace_back(X().Pow(2) + Y().Pow(2) + Polynomial(1),
                           RelOp::kLe);  // empty
  rel.AddTuple(std::move(tuple));
  auto area = modules.Surface(rel);
  ASSERT_TRUE(area.ok()) << area.status().ToString();
  EXPECT_NEAR(area->Value(), 0.0, 1e-12);
}

TEST(AggregateTest, VolumeBox) {
  // Box [0,2]x[0,3]x[0,5]: volume 30 (numeric).
  AggregateModules modules(1e-6);
  ConstraintRelation rel(3);
  GeneralizedTuple tuple;
  tuple.atoms.emplace_back(-X(), RelOp::kLe);
  tuple.atoms.emplace_back(X() - Polynomial(2), RelOp::kLe);
  tuple.atoms.emplace_back(-Y(), RelOp::kLe);
  tuple.atoms.emplace_back(Y() - Polynomial(3), RelOp::kLe);
  tuple.atoms.emplace_back(-Z(), RelOp::kLe);
  tuple.atoms.emplace_back(Z() - Polynomial(5), RelOp::kLe);
  rel.AddTuple(std::move(tuple));
  auto volume = modules.Volume(rel);
  ASSERT_TRUE(volume.ok()) << volume.status().ToString();
  EXPECT_NEAR(volume->Value(), 30.0, 1e-2);
}

TEST(AggregateTest, EvalFiniteSolutions) {
  AggregateModules modules;
  ConstraintRelation rel(1);
  GeneralizedTuple tuple;
  tuple.atoms.emplace_back(X().Pow(2) - Polynomial(4), RelOp::kEq);
  rel.AddTuple(std::move(tuple));
  auto result = modules.Eval(rel, R(1, 1000));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->tuples().size(), 2u);
  EXPECT_TRUE(result->Contains({R(2)}));
  EXPECT_TRUE(result->Contains({R(-2)}));
}

TEST(AggregateTest, EvalInfiniteReturnsOriginal) {
  AggregateModules modules;
  ConstraintRelation rel(1);
  GeneralizedTuple tuple;
  tuple.atoms.emplace_back(X(), RelOp::kGe);
  rel.AddTuple(std::move(tuple));
  auto result = modules.Eval(rel, R(1, 1000));
  ASSERT_TRUE(result.ok());
  // "to S itself otherwise".
  EXPECT_EQ(result->tuples().size(), rel.tuples().size());
  EXPECT_TRUE(result->Contains({R(42)}));
}

TEST(AggregateTest, ApplyNumericDispatchAndArityChecks) {
  AggregateModules modules;
  auto bad = modules.ApplyNumeric(AggregateKind::kSurface,
                                  UnaryInterval(R(0), R(1)));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  auto good =
      modules.ApplyNumeric(AggregateKind::kLength, UnaryInterval(R(0), R(1)));
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->exact_value, R(1));
  EXPECT_GE(modules.call_count(), 1u);
}

}  // namespace
}  // namespace ccdb
