#include "datalog/datalog.h"

#include <gtest/gtest.h>

namespace ccdb {
namespace {

Rational R(std::int64_t n, std::int64_t d = 1) {
  return Rational(BigInt(n), BigInt(d));
}

Polynomial V(int i) { return Polynomial::Var(i); }

// EDB: Edge ⊆ R^2 as a union of constraint boxes/segments.
ConstraintRelation IntervalEdge() {
  // Edge(x, y) := y = x + 1 and 0 <= x and x <= 3  (a "successor" segment).
  ConstraintRelation edge(2);
  GeneralizedTuple t;
  t.atoms.emplace_back(V(1) - V(0) - Polynomial(1), RelOp::kEq);
  t.atoms.emplace_back(-V(0), RelOp::kLe);
  t.atoms.emplace_back(V(0) - Polynomial(3), RelOp::kLe);
  edge.AddTuple(std::move(t));
  return edge;
}

TEST(DatalogTest, TransitiveClosureOfSegment) {
  // Reach(x,y) :- Edge(x,y).
  // Reach(x,y) :- Reach(x,z), Edge(z,y).
  DatalogProgram program;
  program.idb_arities["Reach"] = 2;
  {
    DatalogRule rule;
    rule.head = "Reach";
    rule.head_vars = {0, 1};
    rule.body.push_back(DatalogLiteral::Rel("Edge", {0, 1}));
    program.rules.push_back(rule);
  }
  {
    DatalogRule rule;
    rule.head = "Reach";
    rule.head_vars = {0, 1};
    rule.body.push_back(DatalogLiteral::Rel("Reach", {0, 2}));
    rule.body.push_back(DatalogLiteral::Rel("Edge", {2, 1}));
    program.rules.push_back(rule);
  }
  std::map<std::string, ConstraintRelation> edb;
  edb.emplace("Edge", IntervalEdge());

  DatalogStats stats;
  auto result = EvaluateDatalog(program, edb, DatalogOptions{}, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(stats.reached_fixpoint);
  const ConstraintRelation& reach = result->at("Reach");
  // One hop: (0,1); two hops: (0,2); three: (0,3); four: (0,4).
  EXPECT_TRUE(reach.Contains({R(0), R(1)}));
  EXPECT_TRUE(reach.Contains({R(0), R(2)}));
  EXPECT_TRUE(reach.Contains({R(1, 2), R(5, 2)}));
  EXPECT_TRUE(reach.Contains({R(0), R(4)}));
  // Beyond the reachable band: no.
  EXPECT_FALSE(reach.Contains({R(0), R(5)}));
  EXPECT_FALSE(reach.Contains({R(0), R(0)}));
  // Fixpoint in a handful of rounds (diameter 4).
  EXPECT_LE(stats.iterations, 6);
}

TEST(DatalogTest, ConstraintLiteralInBody) {
  // Positive(x) :- Edge(x, y), x >= 1.
  DatalogProgram program;
  program.idb_arities["P"] = 1;
  DatalogRule rule;
  rule.head = "P";
  rule.head_vars = {0};
  rule.body.push_back(DatalogLiteral::Rel("Edge", {0, 1}));
  rule.body.push_back(
      DatalogLiteral::Constraint(Atom(Polynomial(1) - V(0), RelOp::kLe)));
  program.rules.push_back(rule);

  std::map<std::string, ConstraintRelation> edb;
  edb.emplace("Edge", IntervalEdge());
  auto result = EvaluateDatalog(program, edb);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const ConstraintRelation& p = result->at("P");
  EXPECT_TRUE(p.Contains({R(1)}));
  EXPECT_TRUE(p.Contains({R(3)}));
  EXPECT_FALSE(p.Contains({R(1, 2)}));
}

TEST(DatalogTest, InflationaryNegation) {
  // Comp(x) :- 0 <= x, x <= 5, not Seen(x).   (evaluated against the
  // empty Seen at round 1: Comp = [0,5]; Seen never grows.)
  DatalogProgram program;
  program.idb_arities["Comp"] = 1;
  program.idb_arities["Seen"] = 1;
  DatalogRule rule;
  rule.head = "Comp";
  rule.head_vars = {0};
  rule.body.push_back(
      DatalogLiteral::Constraint(Atom(-V(0), RelOp::kLe)));
  rule.body.push_back(
      DatalogLiteral::Constraint(Atom(V(0) - Polynomial(5), RelOp::kLe)));
  rule.body.push_back(DatalogLiteral::Rel("Seen", {0}, /*negated=*/true));
  program.rules.push_back(rule);

  auto result = EvaluateDatalog(program, {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->at("Comp").Contains({R(2)}));
  EXPECT_FALSE(result->at("Comp").Contains({R(6)}));
  EXPECT_TRUE(result->at("Seen").is_empty_syntactically());
}

TEST(DatalogTest, PrecisionBudgetEnforced) {
  // Doubling rule: D(y) :- D(x), y = 2*x. Starting from D(1), iterates
  // 2, 4, 8, ... — bit length grows linearly per round; a Z_k budget stops
  // it with kUndefined (Theorem 4.7's finite-precision setting).
  DatalogProgram program;
  program.idb_arities["D"] = 1;
  {
    DatalogRule rule;
    rule.head = "D";
    rule.head_vars = {0};
    rule.body.push_back(
        DatalogLiteral::Constraint(Atom(V(0) - Polynomial(1), RelOp::kEq)));
    program.rules.push_back(rule);
  }
  {
    DatalogRule rule;
    rule.head = "D";
    rule.head_vars = {0};
    rule.body.push_back(DatalogLiteral::Rel("D", {1}));
    rule.body.push_back(DatalogLiteral::Constraint(
        Atom(V(0) - Polynomial(2) * V(1), RelOp::kEq)));
    program.rules.push_back(rule);
  }
  DatalogOptions options;
  options.precision_k = 6;  // values up to 63
  options.max_iterations = 100;
  DatalogStats stats;
  auto result = EvaluateDatalog(program, {}, options, &stats);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUndefined);
  EXPECT_GT(stats.iterations, 2);
  EXPECT_LE(stats.iterations, 10);
}

TEST(DatalogTest, ErrorsOnBadPrograms) {
  DatalogProgram program;
  program.idb_arities["R"] = 1;
  DatalogRule rule;
  rule.head = "Undeclared";
  rule.head_vars = {0};
  program.rules.push_back(rule);
  EXPECT_FALSE(EvaluateDatalog(program, {}).ok());

  DatalogProgram clash;
  clash.idb_arities["E"] = 2;
  std::map<std::string, ConstraintRelation> edb;
  edb.emplace("E", ConstraintRelation(2));
  EXPECT_FALSE(EvaluateDatalog(clash, edb).ok());
}

TEST(DatalogTest, GuardedGrowthReachesFixpointWithWidening) {
  // Interval-growing rule bounded by a guard: I(x) :- I(y), x <= y + 1,
  // x <= 10, x >= 0 with I(0) seeded. The fixpoint is [0, 10]; the
  // inflationary iteration converges because the guard caps growth.
  DatalogProgram program;
  program.idb_arities["I"] = 1;
  {
    DatalogRule seed;
    seed.head = "I";
    seed.head_vars = {0};
    seed.body.push_back(
        DatalogLiteral::Constraint(Atom(V(0), RelOp::kEq)));
    program.rules.push_back(seed);
  }
  {
    DatalogRule grow;
    grow.head = "I";
    grow.head_vars = {0};
    grow.body.push_back(DatalogLiteral::Rel("I", {1}));
    grow.body.push_back(DatalogLiteral::Constraint(
        Atom(V(0) - V(1) - Polynomial(1), RelOp::kLe)));
    grow.body.push_back(DatalogLiteral::Constraint(Atom(-V(0), RelOp::kLe)));
    grow.body.push_back(DatalogLiteral::Constraint(
        Atom(V(0) - Polynomial(10), RelOp::kLe)));
    program.rules.push_back(grow);
  }
  DatalogOptions options;
  options.max_iterations = 32;
  DatalogStats stats;
  auto result = EvaluateDatalog(program, {}, options, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(stats.reached_fixpoint);
  EXPECT_TRUE(result->at("I").Contains({R(10)}));
  EXPECT_TRUE(result->at("I").Contains({R(0)}));
  EXPECT_FALSE(result->at("I").Contains({R(-1)}));
  EXPECT_FALSE(result->at("I").Contains({R(11)}));
}

}  // namespace
}  // namespace ccdb
