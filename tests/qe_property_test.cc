// Differential property tests for quantifier elimination: for random
// queries, the quantifier-free output must agree with a direct semantic
// evaluation (substituting grid points and deciding the quantified body
// by brute force over a witness grid — valid for the piecewise-linear
// workloads used here, whose truth on the grid is determined by the grid).

#include <algorithm>
#include <functional>
#include <random>

#include <gtest/gtest.h>

#include "qe/qe.h"

namespace ccdb {
namespace {

Rational R(std::int64_t n, std::int64_t d = 1) {
  return Rational(BigInt(n), BigInt(d));
}

Polynomial X() { return Polynomial::Var(0); }
Polynomial Y() { return Polynomial::Var(1); }

// Random linear formula over x (free) and y (quantified): conjunctions /
// disjunctions of halfplane atoms with small integer coefficients.
Formula RandomLinearBody(std::mt19937_64* rng) {
  std::uniform_int_distribution<std::int64_t> coeff(-3, 3);
  auto random_atom = [&]() {
    Polynomial p;
    std::int64_t a = coeff(*rng), b = coeff(*rng), c = coeff(*rng);
    if (a == 0 && b == 0) a = 1;
    p = Polynomial(a) * X() + Polynomial(b) * Y() + Polynomial(c);
    RelOp ops[] = {RelOp::kLe, RelOp::kLt, RelOp::kEq, RelOp::kGe};
    return Formula::MakeAtom(Atom(p, ops[(*rng)() % 4]));
  };
  Formula conj1 = Formula::And(random_atom(), random_atom());
  Formula conj2 = Formula::And(random_atom(), random_atom());
  return Formula::Or(conj1, conj2);
}

// Exact brute-force truth of exists y body(x0, y): the body restricted to
// x = x0 is a boolean combination of linear atoms in y, so its truth
// regions are delimited by the atoms' breakpoints. Testing every
// breakpoint, every midpoint between consecutive breakpoints, and points
// beyond the extremes decides the existential exactly.
bool BruteForceExists(const Formula& body, const Rational& x0) {
  Formula restricted = body.SubstituteValue(0, x0);
  // Collect breakpoints of atoms in y (variable 1).
  std::vector<Rational> breakpoints;
  std::function<void(const Formula&)> collect = [&](const Formula& f) {
    if (f.kind() == Formula::Kind::kAtom) {
      const Polynomial& p = f.atom().poly;
      if (p.DegreeIn(1) == 1) {
        auto coeffs = p.CoefficientsIn(1);
        if (coeffs[1].is_constant() && coeffs[0].is_constant()) {
          breakpoints.push_back(-coeffs[0].constant_value() /
                                coeffs[1].constant_value());
        }
      }
      return;
    }
    for (const Formula& child : f.children()) collect(child);
  };
  collect(restricted);
  std::sort(breakpoints.begin(), breakpoints.end());
  std::vector<Rational> candidates;
  if (breakpoints.empty()) {
    candidates.push_back(Rational(0));
  } else {
    candidates.push_back(breakpoints.front() - Rational(1));
    for (std::size_t i = 0; i < breakpoints.size(); ++i) {
      candidates.push_back(breakpoints[i]);
      if (i + 1 < breakpoints.size()) {
        candidates.push_back(
            Rational::Midpoint(breakpoints[i], breakpoints[i + 1]));
      }
    }
    candidates.push_back(breakpoints.back() + Rational(1));
  }
  for (const Rational& y : candidates) {
    if (restricted.EvaluateAt({x0, y})) return true;
  }
  return false;
}

class QeDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(QeDifferentialTest, ExistsAgreesWithBruteForce) {
  std::mt19937_64 rng(GetParam());
  Formula body = RandomLinearBody(&rng);
  Formula query = Formula::Exists(1, body);
  auto result = EliminateQuantifiers(query, 1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Compare on a grid of x values (including breakpoint-adjacent points).
  for (std::int64_t num = -30; num <= 30; ++num) {
    Rational x0(BigInt(num), BigInt(6));
    bool qe_truth = result->Contains({x0});
    bool brute = BruteForceExists(body, x0);
    // The brute-force witness grid can only MISS witnesses (never invent
    // them): brute => qe must hold. For the reverse direction the grid is
    // fine enough for these coefficient ranges; check both and report.
    EXPECT_EQ(qe_truth, brute)
        << "x = " << x0.ToString() << " body " << body.ToString({"x", "y"});
  }
}

INSTANTIATE_TEST_SUITE_P(RandomLinear, QeDifferentialTest,
                         ::testing::Range(0, 24));

class QeNonlinearDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(QeNonlinearDifferentialTest, ConicExistsAgreesOnSamples) {
  // exists y (C(x,y) <= 0) for a random conic C: compare against direct
  // y-root analysis: for fixed x, C(x, y) is a quadratic in y; the exists
  // holds iff min_y C(x, y) <= 0 (upward parabola), or always when
  // downward/linear with nonzero slope... handled by sampling the
  // y-extremum exactly.
  std::mt19937_64 rng(1000 + GetParam());
  std::uniform_int_distribution<std::int64_t> coeff(-2, 2);
  // C = a*y^2 + (b*x + c)*y + (d*x^2 + e*x + f) with a > 0.
  std::int64_t a = 1 + static_cast<std::int64_t>(rng() % 2);
  std::int64_t b = coeff(rng), c = coeff(rng), d = coeff(rng),
               e = coeff(rng), f = coeff(rng);
  Polynomial conic = Polynomial(a) * Y().Pow(2) +
                     (Polynomial(b) * X() + Polynomial(c)) * Y() +
                     Polynomial(d) * X().Pow(2) + Polynomial(e) * X() +
                     Polynomial(f);
  Formula query =
      Formula::Exists(1, Formula::MakeAtom(Atom(conic, RelOp::kLe)));
  auto result = EliminateQuantifiers(query, 1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (std::int64_t num = -12; num <= 12; ++num) {
    Rational x0(BigInt(num), BigInt(4));
    // min over y of a*y^2 + B*y + C at y* = -B/(2a):
    Rational big_b = Rational(b) * x0 + Rational(c);
    Rational big_c =
        Rational(d) * x0 * x0 + Rational(e) * x0 + Rational(f);
    Rational min_value = big_c - big_b * big_b / (Rational(4) * Rational(a));
    bool expected = min_value.sign() <= 0;
    EXPECT_EQ(result->Contains({x0}), expected)
        << "x = " << x0.ToString() << " conic "
        << conic.ToString({"x", "y"});
  }
}

INSTANTIATE_TEST_SUITE_P(RandomConics, QeNonlinearDifferentialTest,
                         ::testing::Range(0, 12));

TEST(QeRoundTripTest, DoubleNegationStable) {
  // not not Q == Q semantically: QE of both must agree pointwise.
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    Formula body = RandomLinearBody(&rng);
    Formula query = Formula::Exists(1, body);
    Formula doubled = Formula::Not(Formula::Not(query));
    auto r1 = EliminateQuantifiers(query, 1);
    auto r2 = EliminateQuantifiers(doubled, 1);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());
    for (std::int64_t num = -20; num <= 20; ++num) {
      Rational x0(BigInt(num), BigInt(4));
      EXPECT_EQ(r1->Contains({x0}), r2->Contains({x0}))
          << "x = " << x0.ToString();
    }
  }
}

TEST(QeRoundTripTest, ForallIsNotExistsNot) {
  // forall y phi == not exists y not phi: the two elimination routes must
  // agree pointwise.
  std::mt19937_64 rng(13);
  for (int trial = 0; trial < 8; ++trial) {
    Formula body = RandomLinearBody(&rng);
    Formula forall_query = Formula::Forall(1, body);
    Formula dual_query =
        Formula::Not(Formula::Exists(1, Formula::Not(body)));
    auto r1 = EliminateQuantifiers(forall_query, 1);
    auto r2 = EliminateQuantifiers(dual_query, 1);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());
    for (std::int64_t num = -20; num <= 20; ++num) {
      Rational x0(BigInt(num), BigInt(4));
      EXPECT_EQ(r1->Contains({x0}), r2->Contains({x0}))
          << "trial " << trial << " x = " << x0.ToString();
    }
  }
}

}  // namespace
}  // namespace ccdb
