#include "arith/zsplit.h"

#include <cstdint>

#include <gtest/gtest.h>

namespace ccdb {
namespace {

TEST(PartialZkTest, RangeAndPartiality) {
  PartialZk z4(4);  // |x| <= 15
  EXPECT_TRUE(z4.InRange(BigInt(15)));
  EXPECT_TRUE(z4.InRange(BigInt(-15)));
  EXPECT_FALSE(z4.InRange(BigInt(16)));

  auto ok = z4.Add(BigInt(7), BigInt(8));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, BigInt(15));

  auto overflow = z4.Add(BigInt(8), BigInt(8));
  EXPECT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kUndefined);

  auto mul_overflow = z4.Mul(BigInt(4), BigInt(4));
  EXPECT_FALSE(mul_overflow.ok());
  auto mul_ok = z4.Mul(BigInt(3), BigInt(5));
  ASSERT_TRUE(mul_ok.ok());
  EXPECT_EQ(*mul_ok, BigInt(15));
}

TEST(PartialZkTest, NoBiggestElementTrapExists) {
  // In F_k / Z_k the sentence "exists x forall y (y <= x)" is TRUE under
  // Tarskian semantics — the anomaly the paper's QE-based semantics avoids.
  // Here we just document the finite maximum.
  PartialZk z3(3);
  BigInt max(7);
  for (std::int64_t y = -7; y <= 7; ++y) {
    EXPECT_FALSE(z3.Less(max, BigInt(y)));
  }
}

TEST(SplitZkTest, SplitOpsMatchDefinition) {
  SplitZk z4(4);  // words in [0,16)
  for (std::int64_t a = 0; a < 16; ++a) {
    for (std::int64_t b = 0; b < 16; ++b) {
      EXPECT_EQ(z4.AddL(BigInt(a), BigInt(b)).ToInt64(), (a + b) % 16);
      EXPECT_EQ(z4.AddU(BigInt(a), BigInt(b)).ToInt64(), (a + b) / 16);
      EXPECT_EQ(z4.MulL(BigInt(a), BigInt(b)).ToInt64(), (a * b) % 16);
      EXPECT_EQ(z4.MulU(BigInt(a), BigInt(b)).ToInt64(), (a * b) / 16);
    }
  }
}

class DoublingExhaustiveTest : public ::testing::TestWithParam<std::uint32_t> {
};

TEST_P(DoublingExhaustiveTest, Lemma45AddDefinable) {
  // Lemma 4.5: Z^{l/u}_{2k} addition relations computed from Z^{l/u}_k ops
  // only. Exhaustive over all pairs of 2k-bit words.
  const std::uint32_t k = GetParam();
  SplitZk base(k);
  DoubledSplitZk doubled(&base);
  const std::int64_t modulus = 1ll << (2 * k);
  for (std::int64_t a = 0; a < modulus; ++a) {
    for (std::int64_t b = 0; b < modulus; ++b) {
      SplitPair pa = doubled.Encode(BigInt(a));
      SplitPair pb = doubled.Encode(BigInt(b));
      EXPECT_EQ(doubled.Decode(doubled.AddL(pa, pb)).ToInt64(),
                (a + b) % modulus);
      EXPECT_EQ(doubled.Decode(doubled.AddU(pa, pb)).ToInt64(),
                (a + b) / modulus);
      EXPECT_EQ(doubled.Less(pa, pb), a < b);
    }
  }
}

TEST_P(DoublingExhaustiveTest, Lemma45MulDefinable) {
  const std::uint32_t k = GetParam();
  SplitZk base(k);
  DoubledSplitZk doubled(&base);
  const std::int64_t modulus = 1ll << (2 * k);
  for (std::int64_t a = 0; a < modulus; ++a) {
    for (std::int64_t b = 0; b < modulus; ++b) {
      SplitPair pa = doubled.Encode(BigInt(a));
      SplitPair pb = doubled.Encode(BigInt(b));
      EXPECT_EQ(doubled.Decode(doubled.MulL(pa, pb)).ToInt64(),
                (a * b) % modulus)
          << a << " * " << b << " (k=" << k << ")";
      EXPECT_EQ(doubled.Decode(doubled.MulU(pa, pb)).ToInt64(),
                (a * b) / modulus)
          << a << " * " << b << " (k=" << k << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallK, DoublingExhaustiveTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(DoubledSplitZkTest, IteratedDoublingFourK) {
  // Stacking the construction: Z^{l/u}_{4k} from Z^{l/u}_{2k} from Z^{l/u}_k.
  SplitZk base(2);
  DoubledSplitZk level1(&base);
  // Verify 4-bit semantics via level1 and compare to a native 4-bit SplitZk.
  SplitZk native4(4);
  for (std::int64_t a = 0; a < 16; ++a) {
    for (std::int64_t b = 0; b < 16; ++b) {
      SplitPair pa = level1.Encode(BigInt(a));
      SplitPair pb = level1.Encode(BigInt(b));
      EXPECT_EQ(level1.Decode(level1.MulL(pa, pb)),
                native4.MulL(BigInt(a), BigInt(b)));
      EXPECT_EQ(level1.Decode(level1.MulU(pa, pb)),
                native4.MulU(BigInt(a), BigInt(b)));
    }
  }
}

TEST(DoubledPartialZkTest, Theorem42AddExhaustive) {
  // Theorem 4.2's construction: Z_2k partial addition from Z_k partial ops,
  // with the carry detected through the *undefinedness* of the k-bit sum.
  const std::uint32_t k = 3;
  PartialZk base(k);
  DoubledPartialZk doubled(&base);
  // Encodable fragment: hi in [-(2^k-1), 2^k-1], lo in [0, 2^k).
  const std::int64_t lo_bound = -((1ll << (2 * k)) - (1ll << k));
  const std::int64_t hi_bound = (1ll << (2 * k)) - 1;
  for (std::int64_t a = lo_bound; a <= hi_bound; ++a) {
    for (std::int64_t b = lo_bound; b <= hi_bound; ++b) {
      auto pa = doubled.Encode(BigInt(a));
      auto pb = doubled.Encode(BigInt(b));
      auto sum = doubled.Add(pa, pb);
      std::int64_t expected = a + b;
      bool representable = expected >= lo_bound && expected <= hi_bound;
      if (representable) {
        ASSERT_TRUE(sum.ok()) << a << " + " << b;
        EXPECT_EQ(doubled.Decode(*sum).ToInt64(), expected);
      } else {
        EXPECT_FALSE(sum.ok()) << a << " + " << b;
      }
    }
  }
}

TEST(DoubledPartialZkTest, LexicographicOrderMatchesValueOrder) {
  const std::uint32_t k = 3;
  PartialZk base(k);
  DoubledPartialZk doubled(&base);
  const std::int64_t lo_bound = -((1ll << (2 * k)) - (1ll << k));
  const std::int64_t hi_bound = (1ll << (2 * k)) - 1;
  for (std::int64_t a = lo_bound; a <= hi_bound; a += 3) {
    for (std::int64_t b = lo_bound; b <= hi_bound; b += 3) {
      EXPECT_EQ(doubled.Less(doubled.Encode(BigInt(a)),
                             doubled.Encode(BigInt(b))),
                a < b)
          << a << " < " << b;
    }
  }
}

TEST(OpCountTest, DoublingUsesOnlyBaseOps) {
  SplitZk base(4);
  DoubledSplitZk doubled(&base);
  base.ResetOpCount();
  SplitPair a = doubled.Encode(BigInt(200));
  SplitPair b = doubled.Encode(BigInt(123));
  std::uint64_t after_encode = base.op_count();
  EXPECT_EQ(after_encode, 0u) << "Encode must not consume base ops";
  doubled.MulL(a, b);
  EXPECT_GT(base.op_count(), 0u);
  // A 2-word school multiplication needs a bounded number of base calls.
  EXPECT_LE(base.op_count(), 64u);
}

}  // namespace
}  // namespace ccdb
