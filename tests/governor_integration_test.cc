#include <atomic>
#include <chrono>

#include <gtest/gtest.h>

#include "base/resource.h"
#include "base/status.h"
#include "datalog/datalog.h"
#include "engine/database.h"
#include "qe/qe.h"

namespace ccdb {
namespace {

Rational R(std::int64_t n, std::int64_t d = 1) {
  return Rational(BigInt(n), BigInt(d));
}

// A CAD stress query: nested quantifiers over degree-4 trivariate
// polynomials with cross terms. Ungoverned, this decomposition grinds for
// a very long time (the doubly exponential blowup the paper warns about).
ConstraintDatabase BlowupDb() {
  ConstraintDatabase db;
  EXPECT_TRUE(db.Define("B(x, y, z) := x^4 + y^4 + z^4 + x*y*z - 1 <= 0 and "
                        "x^2*y^2 - z^3 + x - y <= 0")
                  .ok());
  return db;
}

constexpr const char kBlowupQuery[] =
    "exists y (exists z (B(x, y, z) and x^2 + y^2 + z^2 - 4 <= 0))";

TEST(GovernorIntegrationTest, CadBlowupRespectsDeadline) {
  ConstraintDatabase db = BlowupDb();
  std::vector<std::string> names_before = db.RelationNames();

  constexpr double kDeadline = 0.5;
  QueryPolicy policy;
  policy.limits = ResourceLimits::Deadline(kDeadline);
  policy.allow_degradation = false;

  QueryVerdict verdict;
  auto start = std::chrono::steady_clock::now();
  auto result = db.QueryWithPolicy(kBlowupQuery, policy, &verdict);
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
      << result.status().ToString();
  // The acceptance bound: cooperative checks at every loop head must stop
  // the evaluation within 2x the deadline even mid-decomposition.
  EXPECT_LT(elapsed, 2 * kDeadline) << "governor reacted too slowly";
  EXPECT_FALSE(verdict.ok);
  EXPECT_EQ(verdict.attempts, 1);
  // The failed query left the catalog untouched and the engine healthy.
  EXPECT_EQ(db.RelationNames(), names_before);
  auto sane = db.Query("B(x, y, z)");
  ASSERT_TRUE(sane.ok()) << sane.status().ToString();
  EXPECT_FALSE(sane->relation.is_empty_syntactically());
}

TEST(GovernorIntegrationTest, StepBudgetStopsCad) {
  ConstraintDatabase db = BlowupDb();
  QueryPolicy policy;
  policy.limits = ResourceLimits::Steps(200);
  policy.allow_degradation = false;
  QueryVerdict verdict;
  auto result = db.QueryWithPolicy(kBlowupQuery, policy, &verdict);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GE(verdict.steps_consumed, 200u);
}

TEST(GovernorIntegrationTest, ByteBudgetStopsCad) {
  ConstraintDatabase db = BlowupDb();
  QueryPolicy policy;
  policy.limits = ResourceLimits::Bytes(16 * 1024);
  policy.allow_degradation = false;
  QueryVerdict verdict;
  auto result = db.QueryWithPolicy(kBlowupQuery, policy, &verdict);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(result.status().message().find("bytes"), std::string::npos)
      << result.status().ToString();
}

TEST(GovernorIntegrationTest, UnlimitedPolicyAnswersAtFullRung) {
  ConstraintDatabase db;
  ASSERT_TRUE(db.Define("S(x, y) := 4*x^2 - y - 20*x + 25 <= 0").ok());
  QueryVerdict verdict;
  auto result = db.QueryWithPolicy("exists y (S(x, y) and y <= 0)",
                                   QueryPolicy{}, &verdict);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(verdict.ok);
  EXPECT_EQ(verdict.rung, "full");
  EXPECT_EQ(verdict.attempts, 1);
  EXPECT_TRUE(verdict.exhausted_rungs.empty());
  EXPECT_TRUE(result->relation.Contains({R(5, 2)}));
}

TEST(GovernorIntegrationTest, LadderExhaustsAllRungs) {
  // A nonlinear query under a starvation budget: full and reduced-precision
  // exhaust mid-CAD; linear-only refuses the CAD outright. All three rungs
  // report, the last status wins.
  ConstraintDatabase db = BlowupDb();
  QueryPolicy policy;
  policy.limits = ResourceLimits::Steps(50);
  QueryVerdict verdict;
  auto result = db.QueryWithPolicy(kBlowupQuery, policy, &verdict);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(verdict.ok);
  EXPECT_EQ(verdict.attempts, 3);
  ASSERT_EQ(verdict.exhausted_rungs.size(), 3u);
  EXPECT_NE(verdict.exhausted_rungs[0].find("full"), std::string::npos);
  EXPECT_NE(verdict.exhausted_rungs[1].find("reduced-precision"),
            std::string::npos);
  EXPECT_NE(verdict.exhausted_rungs[2].find("linear-only"),
            std::string::npos);
  std::string rendered = verdict.ToString();
  EXPECT_NE(rendered.find("every rung"), std::string::npos);
}

TEST(GovernorIntegrationTest, LinearQueriesSurviveTheLastRung) {
  // A linear query is answerable even on the linear-only rung: give the
  // first two rungs an impossible budget via cancellation... instead,
  // verify directly that linear_only eliminates linear systems and refuses
  // nonlinear ones.
  QeOptions linear_only;
  linear_only.linear_only = true;

  Formula linear = Formula::Exists(
      1, Formula::And(
             Formula::MakeAtom(Atom(Polynomial::Var(0) + Polynomial::Var(1) -
                                    Polynomial(4),
                                RelOp::kLe)),
             Formula::MakeAtom(Atom(-Polynomial::Var(1), RelOp::kLe))));
  auto ok = EliminateQuantifiers(linear, 1, linear_only);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();

  Formula nonlinear = Formula::Exists(
      1, Formula::MakeAtom(Atom(Polynomial::Var(0) * Polynomial::Var(0) +
                                Polynomial::Var(1) * Polynomial::Var(1) -
                                Polynomial(1),
                            RelOp::kLe)));
  auto refused = EliminateQuantifiers(nonlinear, 1, linear_only);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(refused.status().message().find("linear"), std::string::npos);
}

TEST(GovernorIntegrationTest, CancellationShortCircuitsTheLadder) {
  ConstraintDatabase db = BlowupDb();
  std::atomic<bool> cancel{true};  // cancelled before the query even starts
  QueryPolicy policy;
  policy.cancel = &cancel;
  QueryVerdict verdict;
  auto result = db.QueryWithPolicy(kBlowupQuery, policy, &verdict);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(result.status().message().find("cancelled"), std::string::npos)
      << result.status().ToString();
  // Cancellation is not retried on lower rungs — the user asked to stop.
  EXPECT_EQ(verdict.attempts, 1);
}

TEST(GovernorIntegrationTest, GovernedQueryIsRepeatable) {
  // Exhaustion must not poison later queries: governors are per-attempt.
  ConstraintDatabase db = BlowupDb();
  ASSERT_TRUE(db.Define("S(x, y) := 4*x^2 - y - 20*x + 25 <= 0").ok());
  QueryPolicy starved;
  starved.limits = ResourceLimits::Steps(50);
  starved.allow_degradation = false;
  ASSERT_FALSE(db.QueryWithPolicy(kBlowupQuery, starved).ok());
  QueryVerdict verdict;
  auto healthy = db.QueryWithPolicy("exists y (S(x, y) and y <= 0)",
                                    QueryPolicy{}, &verdict);
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
  EXPECT_EQ(verdict.rung, "full");
}

TEST(GovernorIntegrationTest, GovernedDatalogFixpointStops) {
  // An ever-growing fixpoint (transitive closure of an unbounded successor
  // band) under a step budget: the datalog driver must stop cooperatively
  // instead of materializing 64 iterations of growing relations.
  DatalogProgram program;
  program.idb_arities["Reach"] = 2;
  {
    DatalogRule rule;
    rule.head = "Reach";
    rule.head_vars = {0, 1};
    rule.body.push_back(DatalogLiteral::Rel("Edge", {0, 1}));
    program.rules.push_back(rule);
  }
  {
    DatalogRule rule;
    rule.head = "Reach";
    rule.head_vars = {0, 1};
    rule.body.push_back(DatalogLiteral::Rel("Reach", {0, 2}));
    rule.body.push_back(DatalogLiteral::Rel("Edge", {2, 1}));
    program.rules.push_back(rule);
  }
  ConstraintRelation edge(2);
  GeneralizedTuple t;
  t.atoms.emplace_back(
      Polynomial::Var(1) - Polynomial::Var(0) - Polynomial(1), RelOp::kEq);
  edge.AddTuple(std::move(t));
  std::map<std::string, ConstraintRelation> edb;
  edb.emplace("Edge", std::move(edge));

  ResourceGovernor gov(ResourceLimits::Steps(60));
  DatalogOptions options;
  options.qe.governor = &gov;
  auto result = EvaluateDatalog(program, edb, options, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(gov.exhausted());
}

}  // namespace
}  // namespace ccdb
