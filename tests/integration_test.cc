// End-to-end integration tests across the whole engine: multi-relation
// databases, joins, nested CALC_F queries, three-variable quantifier
// elimination, persistence round trips, and performance regression
// fences for the algebraic kernel.

#include <chrono>
#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "base/logging.h"
#include "base/metrics.h"
#include "engine/database.h"
#include "poly/resultant.h"

namespace ccdb {
namespace {

Rational R(std::int64_t n, std::int64_t d = 1) {
  return Rational(BigInt(n), BigInt(d));
}

TEST(IntegrationTest, MultiRelationJoin) {
  ConstraintDatabase db;
  ASSERT_TRUE(db.Define("A(x) := 0 <= x and x <= 10").ok());
  ASSERT_TRUE(db.Define("B(x) := 5 <= x and x <= 15").ok());
  // Intersection.
  auto both = db.Query("A(x) and B(x)");
  ASSERT_TRUE(both.ok());
  EXPECT_TRUE(both->relation.Contains({R(7)}));
  EXPECT_FALSE(both->relation.Contains({R(3)}));
  EXPECT_FALSE(both->relation.Contains({R(12)}));
  // Difference (A minus B).
  auto diff = db.Query("A(x) and not B(x)");
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff->relation.Contains({R(3)}));
  EXPECT_FALSE(diff->relation.Contains({R(7)}));
  // Join through a shared variable.
  ASSERT_TRUE(db.Define("Pair(x, y) := y = 2*x and 0 <= x and x <= 4").ok());
  auto joined = db.Query("exists y (Pair(x, y) and B(y))");
  ASSERT_TRUE(joined.ok());
  // y = 2x in [5,15] -> x in [5/2, 4] (clipped by x <= 4).
  EXPECT_TRUE(joined->relation.Contains({R(3)}));
  EXPECT_TRUE(joined->relation.Contains({R(5, 2)}));
  EXPECT_FALSE(joined->relation.Contains({R(2)}));
  EXPECT_FALSE(joined->relation.Contains({R(5)}));
}

TEST(IntegrationTest, ThreeVariableSphereProjection) {
  // exists z (x^2 + y^2 + z^2 = 1): the closed unit disk — exercises
  // 3-variable CAD with lifting over algebraic base samples.
  ConstraintDatabase db;
  ASSERT_TRUE(db.Define("Sphere(x, y, z) := x^2 + y^2 + z^2 = 1").ok());
  auto disk = db.Query("exists z (Sphere(x, y, z))");
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  EXPECT_TRUE(disk->relation.Contains({R(0), R(0)}));
  EXPECT_TRUE(disk->relation.Contains({R(1), R(0)}));
  EXPECT_TRUE(disk->relation.Contains({R(3, 5), R(4, 5)}));  // on the rim
  EXPECT_TRUE(disk->relation.Contains({R(1, 2), R(1, 2)}));
  EXPECT_FALSE(disk->relation.Contains({R(1), R(1)}));
  EXPECT_FALSE(disk->relation.Contains({R(0), R(11, 10)}));
}

TEST(IntegrationTest, QueryRecordsPipelineMetrics) {
  // A nonlinear existential query must go down the CAD path and move the
  // observability counters: cells constructed, resultants/discriminants
  // computed during projection.
  MetricsRegistry& registry = MetricsRegistry::Global();
  auto before = registry.SnapshotValues();
  ConstraintDatabase db;
  ASSERT_TRUE(db.Define("Circle(x, y) := x^2 + y^2 <= 1").ok());
  auto shadow = db.Query("exists y (Circle(x, y))");
  ASSERT_TRUE(shadow.ok()) << shadow.status().ToString();
  auto after = registry.SnapshotValues();
  auto delta = [&](const std::string& name) {
    auto it_before = before.find(name);
    std::uint64_t base = it_before == before.end() ? 0 : it_before->second;
    auto it_after = after.find(name);
    return (it_after == after.end() ? 0 : it_after->second) - base;
  };
  EXPECT_GT(delta("cad.cells"), 0u);
  EXPECT_GT(delta("cad.resultants") + delta("cad.discriminants"), 0u);
  EXPECT_GT(delta("qe.calls"), 0u);
  EXPECT_GT(delta("catalog.lookups"), 0u);
  EXPECT_GT(delta("db.queries"), 0u);
}

TEST(IntegrationTest, ExplainReportsStagesAndMetricDeltas) {
  // The README surface example: EXPLAIN must attribute wall time to the
  // Figure-1 stages and report the metric movement of this query alone.
  ConstraintDatabase db;
  ASSERT_TRUE(db.Define("S(x, y) := 4*x^2 - y - 20*x + 25 <= 0").ok());
  auto explained = db.Explain("SURFACE[x, y](S(x, y) and y <= 9)(z)");
  ASSERT_TRUE(explained.ok()) << explained.status().ToString();
  EXPECT_TRUE(explained->result.has_scalar);
  EXPECT_EQ(explained->result.scalar.exact_value, R(18));
  EXPECT_GT(explained->total_seconds, 0.0);
  EXPECT_GT(explained->result.stats.qe_seconds, 0.0);
  // At least five distinct meters must have moved (acceptance criterion).
  EXPECT_GE(explained->metric_deltas.size(), 5u);
  EXPECT_GT(explained->metric_deltas.count("qe.calls"), 0u);
  std::string rendered = explained->ToString();
  EXPECT_NE(rendered.find("INSTANTIATION"), std::string::npos);
  EXPECT_NE(rendered.find("QUANTIFIER ELIMINATION"), std::string::npos);
  EXPECT_NE(rendered.find("NUMERICAL EVALUATION"), std::string::npos);
  EXPECT_NE(rendered.find("AGGREGATE EVALUATION"), std::string::npos);
}

TEST(IntegrationTest, ThreeVariableDoubleProjection) {
  // exists y exists z (x = y + z and y^2 <= 1 and z^2 <= 4): x in [-3, 3].
  ConstraintDatabase db;
  ASSERT_TRUE(
      db.Define("W(x, y, z) := x = y + z and y^2 <= 1 and z^2 <= 4").ok());
  auto range = db.Query("exists y (exists z (W(x, y, z)))");
  ASSERT_TRUE(range.ok()) << range.status().ToString();
  EXPECT_TRUE(range->relation.Contains({R(0)}));
  EXPECT_TRUE(range->relation.Contains({R(3)}));
  EXPECT_TRUE(range->relation.Contains({R(-3)}));
  EXPECT_FALSE(range->relation.Contains({R(31, 10)}));
  EXPECT_FALSE(range->relation.Contains({R(-31, 10)}));
}

TEST(IntegrationTest, FinancialScenarioExactNumbers) {
  // The financial_timeseries example's numbers, asserted exactly.
  ConstraintDatabase db;
  ASSERT_TRUE(db.Define(
                    "Bond(t, v) := (0 <= t and t <= 4 and v = 100 + 2*t) or "
                    "(4 <= t and t <= 8 and v = 108 - (t - 4)^2) or "
                    "(8 <= t and t <= 10 and v = 92 + 3*(t - 8))")
                  .ok());
  auto area = db.Query(
      "SURFACE[t, u](exists v (Bond(t, v) and 0 <= u and u <= v))(a)");
  ASSERT_TRUE(area.ok()) << area.status().ToString();
  ASSERT_TRUE(area->scalar.exact);
  // Integral: [0,4]: 400+16=416; [4,8]: 432 - 64/3; [8,10]: 184+6=190.
  // Total = 416 + 432 - 64/3 + 190 = 1038 - 64/3 = 3050/3.
  EXPECT_EQ(area->scalar.exact_value, R(3050, 3));
  auto len = db.Query("LENGTH[t](exists v (Bond(t, v)))(len)");
  ASSERT_TRUE(len.ok());
  EXPECT_EQ(len->scalar.exact_value, R(10));
  // Time above par: 4 + 2*sqrt(2).
  auto above = db.Query("LENGTH[t](exists v (Bond(t, v) and v >= 100))(len)");
  ASSERT_TRUE(above.ok()) << above.status().ToString();
  EXPECT_NEAR(above->scalar.Value(), 4.0 + 2.0 * std::sqrt(2.0), 1e-6);
  // MIN/MAX of attained values.
  auto max = db.Query("MAX[v](exists t (Bond(t, v)))(m)");
  ASSERT_TRUE(max.ok());
  EXPECT_EQ(max->scalar.exact_value, R(108));
  auto min = db.Query("MIN[v](exists t (Bond(t, v)))(m)");
  ASSERT_TRUE(min.ok());
  EXPECT_EQ(min->scalar.exact_value, R(92));
}

TEST(IntegrationTest, QueryOutputFeedsBackAsRelation) {
  // Closed-form composability across THREE stages.
  ConstraintDatabase db;
  ASSERT_TRUE(db.Define("S(x, y) := 4*x^2 - y - 20*x + 25 <= 0").ok());
  auto stage1 = db.Query("exists y (S(x, y) and y <= 9)");  // x in [1,4]
  ASSERT_TRUE(stage1.ok());
  ASSERT_TRUE(db.Register("Stage1", stage1->relation).ok());
  auto stage2 = db.Query("Stage1(x) and x >= 2");  // [2,4]
  ASSERT_TRUE(stage2.ok());
  ASSERT_TRUE(db.Register("Stage2", stage2->relation).ok());
  auto stage3 = db.Query("LENGTH[x](Stage2(x))(len)");
  ASSERT_TRUE(stage3.ok()) << stage3.status().ToString();
  EXPECT_EQ(stage3->scalar.exact_value, R(2));
}

TEST(IntegrationTest, PersistenceOfDerivedRelations) {
  ConstraintDatabase db;
  ASSERT_TRUE(db.Define("S(x, y) := 4*x^2 - y - 20*x + 25 <= 0").ok());
  auto derived = db.Query("exists y (S(x, y) and y <= 0)");
  ASSERT_TRUE(derived.ok());
  ASSERT_TRUE(db.Register("Answer", derived->relation).ok());
  std::string path = "/tmp/ccdb_integration_catalog.txt";
  ASSERT_TRUE(db.Save(path).ok());
  ConstraintDatabase reloaded;
  ASSERT_TRUE(reloaded.Load(path).ok());
  auto contains = reloaded.Contains("Answer", {R(5, 2)});
  ASSERT_TRUE(contains.ok());
  EXPECT_TRUE(*contains);
  std::remove(path.c_str());
}

TEST(IntegrationTest, MixedAggregateAndQuantifierQuery) {
  // Does there exist a point of S below the centroid height? Combines an
  // aggregate predicate inside a first-order query.
  ConstraintDatabase db;
  ASSERT_TRUE(db.Define("Seg(t) := 2 <= t and t <= 6").ok());
  // avg = 4; query: exists t (Seg(t) and t < avg): true.
  auto result = db.Query(
      "exists t (exists m (Seg(t) and AVG[s](Seg(s))(m) and t < m))");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->relation.is_empty_syntactically());
  // And the dual with t < min is false.
  auto empty = db.Query(
      "exists t (exists m (Seg(t) and MIN[s](Seg(s))(m) and t < m))");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->relation.is_empty_syntactically());
}

// Performance regression fences: these operations were once exponential
// (content removal missing in the pseudo-remainder sequences; divisor
// enumeration in rational root snapping). Generous wall-clock bounds, but
// they fail loudly if the kernels regress to exponential behaviour.
TEST(IntegrationTest, PerformanceFenceDegree16Kernel) {
  std::mt19937_64 rng(2016);
  std::uniform_int_distribution<std::int64_t> dist(-255, 255);
  std::vector<Rational> coeffs;
  for (int i = 0; i <= 16; ++i) coeffs.emplace_back(BigInt(dist(rng)));
  UPoly p(std::move(coeffs));
  Polynomial poly = p.ToPolynomial(0);

  auto start = std::chrono::steady_clock::now();
  Polynomial g = MvGcd(poly, poly.Derivative(0));
  auto basis = SquarefreeBasis({poly});
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_TRUE(g.is_constant());
  ASSERT_EQ(basis.size(), 1u);
  EXPECT_LT(seconds, 5.0) << "degree-16 gcd/basis kernel regressed";
}

TEST(IntegrationTest, PerformanceFenceDegree16Solve) {
  ConstraintDatabase db;
  ASSERT_TRUE(db.Define(
                    "P(x) := x^16 - 3*x^11 + 7*x^6 - x - 120 = 0")
                  .ok());
  auto start = std::chrono::steady_clock::now();
  auto solutions = db.Solve("P(x)", R(1, 1 << 30));
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_TRUE(solutions.ok()) << solutions.status().ToString();
  EXPECT_GE(solutions->size(), 1u);
  EXPECT_LT(seconds, 10.0) << "degree-16 numerical evaluation regressed";
}

}  // namespace
}  // namespace ccdb
