#include "base/status.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace ccdb {
namespace {

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_TRUE(status.message().empty());
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("a").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("b").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Undefined("c").code(), StatusCode::kUndefined);
  EXPECT_EQ(Status::ResourceExhausted("d").code(),
            StatusCode::kResourceExhausted);
  Status status = Status::Internal("broken invariant");
  EXPECT_EQ(status.message(), "broken invariant");
  EXPECT_NE(status.ToString().find("broken invariant"), std::string::npos);
}

TEST(StatusTest, EveryCodeHasAName) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kUnimplemented,
        StatusCode::kInternal, StatusCode::kOutOfRange, StatusCode::kUndefined,
        StatusCode::kNumericalFailure, StatusCode::kResourceExhausted}) {
    const char* name = StatusCodeToString(code);
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u);
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, OkStatusIsRejected) {
  // Constructing a StatusOr from an OK status would leave it value-less but
  // "ok"; the constructor demotes that to an internal error instead.
  StatusOr<int> result(Status::Ok());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

using StatusOrDeathTest = ::testing::Test;

// Unchecked access to an error StatusOr must abort loudly with the held
// status — not dereference an empty optional (silent UB).
TEST(StatusOrDeathTest, ValueOnErrorAborts) {
  StatusOr<int> result(Status::NotFound("relation R not found"));
  EXPECT_DEATH(result.value(), "relation R not found");
}

TEST(StatusOrDeathTest, DereferenceOnErrorAborts) {
  StatusOr<std::string> result(Status::Internal("bad state"));
  EXPECT_DEATH(*result, "bad state");
}

TEST(StatusOrDeathTest, ArrowOnErrorAborts) {
  StatusOr<std::vector<int>> result(
      Status::ResourceExhausted("stage=qe.drive reason=steps"));
  EXPECT_DEATH(result->size(), "qe.drive");
}

TEST(StatusOrDeathTest, ConstAccessorsAbortToo) {
  const StatusOr<int> result(Status::Undefined("precision overflow"));
  EXPECT_DEATH(result.value(), "precision overflow");
  EXPECT_DEATH(*result, "precision overflow");
}

}  // namespace
}  // namespace ccdb
