#include "poly/algebraic_number.h"
#include "poly/number_field.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ccdb {
namespace {

Rational R(std::int64_t n, std::int64_t d = 1) {
  return Rational(BigInt(n), BigInt(d));
}

UPoly FromInts(std::initializer_list<std::int64_t> coeffs) {
  std::vector<Rational> c;
  for (std::int64_t v : coeffs) c.emplace_back(BigInt(v));
  return UPoly(std::move(c));
}

AlgebraicNumber Sqrt2() {
  auto roots = AlgebraicNumber::RootsOf(FromInts({-2, 0, 1}));
  return roots[1];  // positive root
}

TEST(AlgebraicNumberTest, RationalConstruction) {
  AlgebraicNumber a(R(5, 2));
  EXPECT_TRUE(a.is_rational());
  EXPECT_EQ(a.rational_value(), R(5, 2));
  EXPECT_EQ(a.Sign(), 1);
  EXPECT_EQ(AlgebraicNumber(R(0)).Sign(), 0);
  EXPECT_EQ(AlgebraicNumber(R(-3)).Sign(), -1);
}

TEST(AlgebraicNumberTest, RootsOfOrderedAndSigned) {
  auto roots = AlgebraicNumber::RootsOf(FromInts({-2, 0, 1}));
  ASSERT_EQ(roots.size(), 2u);
  EXPECT_EQ(roots[0].Sign(), -1);
  EXPECT_EQ(roots[1].Sign(), 1);
  EXPECT_LT(roots[0], roots[1]);
  EXPECT_NEAR(roots[1].ToDouble(), 1.4142135623730951, 1e-12);
}

TEST(AlgebraicNumberTest, SignOfPolyAtExactZero) {
  AlgebraicNumber sqrt2 = Sqrt2();
  // sqrt(2)^2 - 2 == 0, decided exactly.
  EXPECT_EQ(sqrt2.SignOfPolyAt(FromInts({-2, 0, 1})), 0);
  // sqrt(2)^2 - 1 = 1 > 0.
  EXPECT_EQ(sqrt2.SignOfPolyAt(FromInts({-1, 0, 1})), 1);
  // sqrt(2) - 2 < 0.
  EXPECT_EQ(sqrt2.SignOfPolyAt(FromInts({-2, 1})), -1);
  // Multiple of the minimal polynomial also vanishes.
  EXPECT_EQ(sqrt2.SignOfPolyAt(FromInts({-2, 0, 1}) * FromInts({7, 1})), 0);
}

TEST(AlgebraicNumberTest, CompareDistinctRootsOfSamePoly) {
  auto roots = AlgebraicNumber::RootsOf(FromInts({-2, 0, 1}));
  EXPECT_EQ(roots[0].Compare(roots[1]), -1);
  EXPECT_EQ(roots[1].Compare(roots[0]), 1);
  EXPECT_EQ(roots[0].Compare(roots[0]), 0);
}

TEST(AlgebraicNumberTest, CompareEqualFromDifferentPolynomials) {
  // sqrt(2) as a root of x^2-2 and of (x^2-2)(x-5).
  AlgebraicNumber a = Sqrt2();
  auto roots_b = AlgebraicNumber::RootsOf(FromInts({-2, 0, 1}) *
                                          FromInts({-5, 1}));
  ASSERT_EQ(roots_b.size(), 3u);
  EXPECT_EQ(a.Compare(roots_b[1]), 0) << roots_b[1].ToString();
  EXPECT_EQ(a.Compare(roots_b[0]), 1);
  EXPECT_EQ(a.Compare(roots_b[2]), -1);
}

TEST(AlgebraicNumberTest, CompareRational) {
  AlgebraicNumber sqrt2 = Sqrt2();
  EXPECT_EQ(sqrt2.CompareRational(R(1)), 1);
  EXPECT_EQ(sqrt2.CompareRational(R(2)), -1);
  EXPECT_EQ(sqrt2.CompareRational(R(141421356, 100000000)), 1);
  EXPECT_EQ(sqrt2.CompareRational(R(141421357, 100000000)), -1);
  AlgebraicNumber half(R(1, 2));
  EXPECT_EQ(half.CompareRational(R(1, 2)), 0);
}

TEST(AlgebraicNumberTest, ApproximateWithinEpsilon) {
  AlgebraicNumber sqrt2 = Sqrt2();
  Rational eps(BigInt(1), BigInt::Pow2(50));
  Rational approx = sqrt2.Approximate(eps);
  Rational err = approx * approx - R(2);
  // |approx - sqrt2| <= eps implies |approx^2 - 2| <= eps * (2*sqrt2+eps).
  EXPECT_LE(err.Abs(), eps * R(4));
}

TEST(AlgebraicNumberTest, GoldenRatioCubicMix) {
  // x^2 - x - 1: roots phi and 1-phi.
  auto roots = AlgebraicNumber::RootsOf(FromInts({-1, -1, 1}));
  ASSERT_EQ(roots.size(), 2u);
  EXPECT_NEAR(roots[1].ToDouble(), 1.618033988749895, 1e-12);
  // phi satisfies phi^2 = phi + 1.
  EXPECT_EQ(roots[1].SignOfPolyAt(FromInts({-1, -1, 1})), 0);
  // phi^3 - 2phi - 1 = 0 as well (since x^3-2x-1 = (x^2-x-1)(x+1)).
  EXPECT_EQ(roots[1].SignOfPolyAt(FromInts({-1, -2, 0, 1})), 0);
}

TEST(NumberFieldTest, RationalFieldDegenerate) {
  NumberField field((AlgebraicNumber(R(3))));
  // Elements reduce to constants: t ≡ 3.
  UPoly t = UPoly::X();
  UPoly reduced = field.Reduce(t);
  EXPECT_EQ(reduced, UPoly::Constant(R(3)));
  EXPECT_EQ(field.Sign(t - UPoly::Constant(R(3))), 0);
  EXPECT_EQ(field.Sign(t), 1);
}

TEST(NumberFieldTest, ArithmeticInQSqrt2) {
  NumberField field(Sqrt2());
  UPoly t = UPoly::X();  // represents sqrt(2)
  // t*t = 2.
  EXPECT_EQ(field.Mul(t, t), UPoly::Constant(R(2)));
  // (1+t)(1-t) = 1 - t^2 = -1.
  UPoly one = UPoly::Constant(R(1));
  EXPECT_EQ(field.Mul(one + t, one - t), UPoly::Constant(R(-1)));
  EXPECT_EQ(field.Sign(t - one), 1);       // sqrt2 > 1
  EXPECT_EQ(field.Sign(t - UPoly::Constant(R(2))), -1);
  EXPECT_TRUE(field.IsZero(field.Sub(field.Mul(t, t), UPoly::Constant(R(2)))));
}

TEST(NumberFieldTest, InverseInQSqrt2) {
  NumberField field(Sqrt2());
  UPoly t = UPoly::X();
  // 1/sqrt2 = sqrt2/2.
  UPoly inv = field.Inverse(t);
  EXPECT_EQ(inv, t.Scale(R(1, 2)));
  // 1/(1+sqrt2) = sqrt2 - 1.
  UPoly one = UPoly::Constant(R(1));
  UPoly inv2 = field.Inverse(one + t);
  EXPECT_EQ(inv2, t - one);
  // a * a^{-1} = 1.
  EXPECT_EQ(field.Mul(one + t, inv2), one);
}

TEST(NumberFieldTest, D5SplitOnReducibleModulus) {
  // alpha = sqrt(2) presented as a root of (x^2-2)(x^2-3) — reducible.
  UPoly reducible = FromInts({-2, 0, 1}) * FromInts({-3, 0, 1});
  auto roots = AlgebraicNumber::RootsOf(reducible);
  ASSERT_EQ(roots.size(), 4u);
  // roots sorted: -sqrt3, -sqrt2, sqrt2, sqrt3. Take sqrt2.
  AlgebraicNumber alpha = roots[2];
  NumberField field(alpha);
  EXPECT_EQ(field.degree(), 4);
  UPoly t = UPoly::X();
  // Inverting x^2 - 3 (which vanishes at ±sqrt3 but not at alpha) forces a
  // D5 split down to the factor containing sqrt2.
  UPoly element = field.Reduce(FromInts({-3, 0, 1}));
  EXPECT_FALSE(field.IsZero(element));
  UPoly inv = field.Inverse(element);
  // After the split the modulus divides x^2-2... the element ≡ 2-3 = -1,
  // so its inverse is -1.
  EXPECT_EQ(field.Mul(element, inv), UPoly::Constant(R(1)));
  EXPECT_LE(field.degree(), 2);
  // Field still knows alpha^2 = 2.
  EXPECT_TRUE(field.IsZero(field.Sub(field.Mul(t, t), UPoly::Constant(R(2)))));
}

TEST(NumberFieldTest, EncloseConverges) {
  NumberField field(Sqrt2());
  UPoly t = UPoly::X();
  Interval e = field.Enclose(t + UPoly::Constant(R(1)),
                             Rational(BigInt(1), BigInt(1000000)));
  EXPECT_LE(e.Width(), R(1, 1000000));
  EXPECT_TRUE(e.Contains(R(2414214, 1000000)) ||
              e.Contains(R(2414213, 1000000)));
}

TEST(FieldPolyTest, NormalizeDropsZeroLeading) {
  NumberField field(Sqrt2());
  UPoly t = UPoly::X();
  // Leading coefficient t^2 - 2 is zero in the field.
  FieldPoly p({UPoly::Constant(R(1)), t, FromInts({-2, 0, 1})});
  p.Normalize(field);
  EXPECT_EQ(p.degree(), 1);
}

TEST(FieldPolyTest, RootsOfYSquaredMinusAlpha) {
  // y^2 - sqrt2 = 0: roots ±2^{1/4}.
  NumberField field(Sqrt2());
  UPoly t = UPoly::X();
  FieldPoly p({-t, UPoly(), UPoly::Constant(R(1))});
  FieldPoly sf = p.SquarefreePart(field);
  auto roots = sf.IsolateRealRoots(field);
  ASSERT_EQ(roots.size(), 2u);
  double fourth_root = std::pow(2.0, 0.25);
  EXPECT_LT(roots[0].lo().ToDouble(), -fourth_root + 0.5);
  EXPECT_GT(roots[1].hi().ToDouble(), fourth_root - 0.5);
  // Sign tests at rational points bracket the positive root.
  EXPECT_EQ(p.SignAtRational(R(0), field), -1);   // -sqrt2 < 0
  EXPECT_EQ(p.SignAtRational(R(2), field), 1);    // 4 - sqrt2 > 0
}

TEST(FieldPolyTest, GcdDetectsCommonRootOverField) {
  NumberField field(Sqrt2());
  UPoly t = UPoly::X();
  UPoly one = UPoly::Constant(R(1));
  // p = (y - sqrt2)(y + 1), q = (y - sqrt2)(y - 3).
  FieldPoly y_minus_alpha({-t, one});
  FieldPoly p = y_minus_alpha.Mul(FieldPoly({one, one}), field);
  FieldPoly q = y_minus_alpha.Mul(
      FieldPoly({UPoly::Constant(R(-3)), one}), field);
  FieldPoly g = FieldPoly::Gcd(p, q, field);
  EXPECT_EQ(g.degree(), 1);
  // Monic gcd = y - sqrt2: constant coefficient ≡ -sqrt2.
  EXPECT_TRUE(field.IsZero(field.Add(g.coefficients()[0], t)));
}

TEST(FieldPolyTest, SquarefreePartOverField) {
  NumberField field(Sqrt2());
  UPoly t = UPoly::X();
  UPoly one = UPoly::Constant(R(1));
  FieldPoly y_minus_alpha({-t, one});
  FieldPoly squared = y_minus_alpha.Mul(y_minus_alpha, field);
  FieldPoly sf = squared.SquarefreePart(field);
  EXPECT_EQ(sf.degree(), 1);
  auto roots = sf.IsolateRealRoots(field);
  ASSERT_EQ(roots.size(), 1u);
}

}  // namespace
}  // namespace ccdb
