#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/status.h"
#include "query/parser.h"

namespace ccdb {
namespace {

// Seeded-PRNG fuzzing of the parser entry points: every input — random
// bytes, random token soup, or a mutated valid query — must come back as a
// Status. A crash, abort, or hang here is a bug; the REPL feeds user input
// straight into these functions.

constexpr std::uint64_t kSeed = 0x5eed5eed5eedull;

void ExpectParseSurvives(const std::string& input) {
  auto formula = ParseFormula(input);
  (void)formula;  // ok or error — both fine; the point is "no crash"
  auto def = ParseRelationDef(input);
  (void)def;
  auto term = ParseTerm(input);
  (void)term;
}

TEST(ParserFuzzTest, RandomBytes) {
  std::mt19937_64 rng(kSeed);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<int> length(0, 200);
  for (int round = 0; round < 500; ++round) {
    std::string input;
    int n = length(rng);
    input.reserve(n);
    for (int i = 0; i < n; ++i) input.push_back(static_cast<char>(byte(rng)));
    ExpectParseSurvives(input);
  }
}

TEST(ParserFuzzTest, RandomTokenSoup) {
  // Valid lexemes in invalid orders stress the grammar rather than the
  // lexer.
  const std::vector<std::string> tokens = {
      "exists", "forall", "and",  "or",   "not",  "true", "false", "(",
      ")",      "<=",     "<",    ">=",   ">",    "=",    "!=",    "+",
      "-",      "*",      "/",    "^",    ",",    ":=",   "x",     "y",
      "S",      "MIN",    "MAX",  "AVG",  "LENGTH", "SURFACE", "VOLUME",
      "EVAL",   "[",      "]",    "0",    "1",    "42",   "1/3",   "sin",
      "exp",    "sqrt"};
  std::mt19937_64 rng(kSeed + 1);
  std::uniform_int_distribution<std::size_t> pick(0, tokens.size() - 1);
  std::uniform_int_distribution<int> length(1, 40);
  for (int round = 0; round < 1000; ++round) {
    std::string input;
    int n = length(rng);
    for (int i = 0; i < n; ++i) {
      input += tokens[pick(rng)];
      input += ' ';
    }
    ExpectParseSurvives(input);
  }
}

TEST(ParserFuzzTest, MutatedValidQueries) {
  const std::vector<std::string> corpus = {
      "exists y (S(x, y) and y <= 0)",
      "S(x, y) := 4*x^2 - y - 20*x + 25 <= 0",
      "SURFACE[x, y](S(x, y) and y <= 9)(z)",
      "forall x (x^2 >= 0)",
      "MIN[x](exists y (S(x, y)))(m)",
      "sin(x) <= 1/2 and not (x >= 3)",
  };
  std::mt19937_64 rng(kSeed + 2);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<int> mutations(1, 4);
  for (int round = 0; round < 1000; ++round) {
    std::string input = corpus[round % corpus.size()];
    int edits = mutations(rng);
    for (int e = 0; e < edits && !input.empty(); ++e) {
      std::uniform_int_distribution<std::size_t> at(0, input.size() - 1);
      switch (rng() % 3) {
        case 0:  // flip
          input[at(rng)] = static_cast<char>(byte(rng));
          break;
        case 1:  // delete
          input.erase(at(rng), 1);
          break;
        default:  // duplicate a chunk
          input.insert(at(rng), input.substr(at(rng), 5));
          break;
      }
    }
    ExpectParseSurvives(input);
  }
}

TEST(ParserFuzzTest, DeepNestingReturnsErrorNotOverflow) {
  // 50k levels of parentheses / negations must be rejected by the parser's
  // depth cap, not blow the call stack.
  std::string parens(50000, '(');
  parens += "x <= 0";
  parens += std::string(50000, ')');
  auto deep_formula = ParseFormula(parens);
  ASSERT_FALSE(deep_formula.ok());
  EXPECT_EQ(deep_formula.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(deep_formula.status().message().find("nesting"),
            std::string::npos);

  std::string nots;
  for (int i = 0; i < 50000; ++i) nots += "not ";
  nots += "x <= 0";
  auto deep_nots = ParseFormula(nots);
  ASSERT_FALSE(deep_nots.ok());
  EXPECT_EQ(deep_nots.status().code(), StatusCode::kInvalidArgument);

  std::string minuses(50000, '-');
  minuses += "x";
  auto deep_term = ParseTerm(minuses);
  ASSERT_FALSE(deep_term.ok());
  EXPECT_EQ(deep_term.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParserFuzzTest, ReasonableNestingStillParses) {
  // The depth cap must not reject sane queries.
  std::string nested = "x <= 0";
  for (int i = 0; i < 50; ++i) nested = "(" + nested + ")";
  auto formula = ParseFormula(nested);
  EXPECT_TRUE(formula.ok()) << formula.status().ToString();
}

}  // namespace
}  // namespace ccdb
