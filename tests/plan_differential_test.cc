// Differential property tests for the structure-aware planner: on the
// disequality-free single-quantified-variable corpora below, the planned
// path (classify → miniscope → split → dispatch) and the monolithic path
// route every sub-problem through the same elimination primitives, so the
// answer relation must be BYTE-identical with the planner on and off, and
// at every thread count (1, 2, 8). This is the executable form of the
// determinism contract in plan/planner.h and DESIGN.md §10.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "base/thread_pool.h"
#include "constraint/atom.h"
#include "constraint/formula.h"
#include "plan/planner.h"
#include "qe/qe.h"

namespace ccdb {
namespace {

const int kThreadCounts[] = {1, 2, 8};

Polynomial X() { return Polynomial::Var(0); }
Polynomial Y() { return Polynomial::Var(1); }

// Random linear formula over x (free) and y (quantified) — the same corpus
// shape as qe_property_test's RandomLinearBody (no disequalities).
Formula RandomLinearBody(std::mt19937_64* rng) {
  std::uniform_int_distribution<std::int64_t> coeff(-3, 3);
  auto random_atom = [&]() {
    std::int64_t a = coeff(*rng), b = coeff(*rng), c = coeff(*rng);
    if (a == 0 && b == 0) a = 1;
    Polynomial p = Polynomial(a) * X() + Polynomial(b) * Y() + Polynomial(c);
    RelOp ops[] = {RelOp::kLe, RelOp::kLt, RelOp::kEq, RelOp::kGe};
    return Formula::MakeAtom(Atom(p, ops[(*rng)() % 4]));
  };
  Formula conj1 = Formula::And(random_atom(), random_atom());
  Formula conj2 = Formula::And(random_atom(), random_atom());
  return Formula::Or(conj1, conj2);
}

// Random dense-order formula: unit-coefficient comparisons between x, y,
// and small constants — stays inside FO(<=), so the planner dispatches the
// dense-order engine.
Formula RandomDenseOrderBody(std::mt19937_64* rng) {
  std::uniform_int_distribution<std::int64_t> constant(-2, 2);
  auto random_atom = [&]() {
    RelOp ops[] = {RelOp::kLe, RelOp::kLt, RelOp::kEq, RelOp::kGe};
    RelOp op = ops[(*rng)() % 4];
    switch ((*rng)() % 4) {
      case 0:
        return Formula::MakeAtom(Atom(X() - Y(), op));
      case 1:
        return Formula::MakeAtom(Atom(Y() - X(), op));
      case 2:
        return Formula::MakeAtom(Atom(Y() - Polynomial(constant(*rng)), op));
      default:
        return Formula::MakeAtom(Atom(X() - Polynomial(constant(*rng)), op));
    }
  };
  Formula conj1 = Formula::And(random_atom(), random_atom());
  Formula conj2 = Formula::And(random_atom(), random_atom());
  return Formula::Or(conj1, conj2);
}

// Random conic atom (genuinely polynomial): a*y^2 + (b*x + c)*y + d*x^2 +
// e*x + f <= 0 with a > 0 — forces the CAD engine on both paths.
Formula RandomConicBody(std::mt19937_64* rng) {
  std::uniform_int_distribution<std::int64_t> coeff(-2, 2);
  std::int64_t a = 1 + static_cast<std::int64_t>((*rng)() % 2);
  std::int64_t b = coeff(*rng), c = coeff(*rng), d = coeff(*rng),
               e = coeff(*rng), f = coeff(*rng);
  Polynomial conic = Polynomial(a) * Y().Pow(2) +
                     (Polynomial(b) * X() + Polynomial(c)) * Y() +
                     Polynomial(d) * X().Pow(2) + Polynomial(e) * X() +
                     Polynomial(f);
  return Formula::MakeAtom(Atom(conic, RelOp::kLe));
}

// Eliminates `exists y body` on every (plan, threads) combination and
// checks that all renderings agree byte-for-byte with the reference run
// (planner off, threads = 1 — the historical monolithic serial path).
void ExpectPlanAndThreadInvariant(const Formula& body) {
  Formula query = Formula::Exists(1, body);
  std::string reference;
  bool have_reference = false;
  for (PlanToggle plan : {PlanToggle::kOff, PlanToggle::kOn}) {
    for (int threads : kThreadCounts) {
      ThreadPool pool(threads);
      QeOptions options;
      options.plan = plan;
      options.pool = &pool;
      auto result = EliminateQuantifiers(query, 1, options);
      ASSERT_TRUE(result.ok())
          << result.status().ToString() << " plan="
          << (plan == PlanToggle::kOn ? "on" : "off")
          << " threads=" << threads;
      std::string rendered = result->ToString();
      if (!have_reference) {
        reference = rendered;
        have_reference = true;
        continue;
      }
      EXPECT_EQ(rendered, reference)
          << "plan=" << (plan == PlanToggle::kOn ? "on" : "off")
          << " threads=" << threads << " body " << body.ToString({"x", "y"});
    }
  }
}

class PlanLinearDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(PlanLinearDifferentialTest, PlannedEqualsMonolithicAtEveryThreadCount) {
  std::mt19937_64 rng(GetParam());
  ExpectPlanAndThreadInvariant(RandomLinearBody(&rng));
}

INSTANTIATE_TEST_SUITE_P(RandomLinear, PlanLinearDifferentialTest,
                         ::testing::Range(0, 16));

class PlanDenseOrderDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(PlanDenseOrderDifferentialTest,
       PlannedEqualsMonolithicAtEveryThreadCount) {
  std::mt19937_64 rng(100 + GetParam());
  ExpectPlanAndThreadInvariant(RandomDenseOrderBody(&rng));
}

INSTANTIATE_TEST_SUITE_P(RandomDenseOrder, PlanDenseOrderDifferentialTest,
                         ::testing::Range(0, 12));

class PlanConicDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(PlanConicDifferentialTest, PlannedEqualsMonolithicAtEveryThreadCount) {
  std::mt19937_64 rng(1000 + GetParam());
  ExpectPlanAndThreadInvariant(RandomConicBody(&rng));
}

INSTANTIATE_TEST_SUITE_P(RandomConics, PlanConicDifferentialTest,
                         ::testing::Range(0, 8));

// Mixed-fragment union with a free-variable-only conjunct in each
// disjunct: exercises miniscoping, per-fragment dispatch, and the union
// merge simultaneously — still byte-identical everywhere.
TEST(PlanMixedDifferentialTest, MixedFragmentUnionIsPathAndThreadInvariant) {
  std::mt19937_64 rng(42);
  for (int trial = 0; trial < 6; ++trial) {
    Formula dense = RandomDenseOrderBody(&rng);
    Formula linear = RandomLinearBody(&rng);
    Formula conic = RandomConicBody(&rng);
    Formula guard = Formula::Compare(X(), RelOp::kLe, Polynomial(trial + 3));
    ExpectPlanAndThreadInvariant(
        Formula::Or({Formula::And(guard, dense), linear, conic}));
  }
}

}  // namespace
}  // namespace ccdb
