#include "qe/qe.h"

#include <gtest/gtest.h>

#include "qe/algebraic_point.h"
#include "qe/cad.h"
#include "qe/fourier_motzkin.h"

namespace ccdb {
namespace {

Rational R(std::int64_t n, std::int64_t d = 1) {
  return Rational(BigInt(n), BigInt(d));
}

Polynomial X() { return Polynomial::Var(0); }
Polynomial Y() { return Polynomial::Var(1); }
Polynomial Z() { return Polynomial::Var(2); }

UPoly FromInts(std::initializer_list<std::int64_t> coeffs) {
  std::vector<Rational> c;
  for (std::int64_t v : coeffs) c.emplace_back(BigInt(v));
  return UPoly(std::move(c));
}

// ---------------------------------------------------------------- points

TEST(AlgebraicPointTest, RationalFastPath) {
  AlgebraicPoint p;
  p.Append(AlgebraicNumber(R(2)));
  p.Append(AlgebraicNumber(R(-1)));
  EXPECT_TRUE(p.AllRational());
  EXPECT_EQ(p.SignAt(X() * Y() + Polynomial(2)), 0);   // 2*(-1)+2 = 0
  EXPECT_EQ(p.SignAt(X() + Y()), 1);
  EXPECT_EQ(p.SignAt(Y()), -1);
}

TEST(AlgebraicPointTest, SingleAlgebraicCoordinate) {
  auto roots = AlgebraicNumber::RootsOf(FromInts({-2, 0, 1}));
  AlgebraicPoint p;
  p.Append(roots[1]);  // sqrt2
  EXPECT_EQ(p.SignAt(X().Pow(2) - Polynomial(2)), 0);
  EXPECT_EQ(p.SignAt(X() - Polynomial(1)), 1);
  EXPECT_EQ(p.SignAt(X() - Polynomial(2)), -1);
}

TEST(AlgebraicPointTest, TwoAlgebraicCoordinatesSign) {
  // (sqrt2, sqrt3): sign of x*y - 2 must be + (sqrt6 > 2), x*y - 3 is -.
  auto r2 = AlgebraicNumber::RootsOf(FromInts({-2, 0, 1}));
  auto r3 = AlgebraicNumber::RootsOf(FromInts({-3, 0, 1}));
  AlgebraicPoint p;
  p.Append(r2[1]);
  p.Append(r3[1]);
  EXPECT_EQ(p.SignAt(X() * Y() - Polynomial(2)), 1);
  EXPECT_EQ(p.SignAt(X() * Y() - Polynomial(3)), -1);
  // Exact zero across two algebraic coordinates: x^2*y^2 - 6 = 0.
  EXPECT_EQ(p.SignAt(X().Pow(2) * Y().Pow(2) - Polynomial(6)), 0);
  // x^2 + y^2 - 5 = 0 exactly.
  EXPECT_EQ(p.SignAt(X().Pow(2) + Y().Pow(2) - Polynomial(5)), 0);
}

TEST(AlgebraicPointTest, ValueAtIdentifiesAlgebraicValue) {
  auto r2 = AlgebraicNumber::RootsOf(FromInts({-2, 0, 1}));
  AlgebraicPoint p;
  p.Append(r2[1]);
  // Value of x + 1 at sqrt2 is sqrt2 + 1 ~ 2.4142.
  AlgebraicNumber v = p.ValueAt(X() + Polynomial(1));
  EXPECT_NEAR(v.ToDouble(), 2.414213562373095, 1e-9);
  // Its defining data is exact: v - 1 squares to 2.
  EXPECT_EQ(v.SignOfPolyAt(FromInts({-1, -2, 1})), 0);  // x^2-2x-1 at 1+sqrt2
}

TEST(AlgebraicPointTest, StackRootsOverRationalBase) {
  // Circle x^2 + y^2 - 1 over x = 0: roots y = ±1.
  AlgebraicPoint p;
  p.Append(AlgebraicNumber(R(0)));
  auto roots = p.StackRoots(X().Pow(2) + Y().Pow(2) - Polynomial(1));
  ASSERT_TRUE(roots.ok());
  ASSERT_EQ(roots->size(), 2u);
  EXPECT_EQ((*roots)[0].CompareRational(R(-1)), 0);
  EXPECT_EQ((*roots)[1].CompareRational(R(1)), 0);
}

TEST(AlgebraicPointTest, StackRootsOverAlgebraicBase) {
  // Circle over x = sqrt(2)/2: y = ±sqrt(1/2).
  auto r = AlgebraicNumber::RootsOf(FromInts({-1, 0, 2}));  // x^2 = 1/2
  AlgebraicPoint p;
  p.Append(r[1]);
  auto roots = p.StackRoots(X().Pow(2) + Y().Pow(2) - Polynomial(1));
  ASSERT_TRUE(roots.ok());
  ASSERT_EQ(roots->size(), 2u);
  EXPECT_NEAR((*roots)[1].ToDouble(), 0.7071067811865476, 1e-9);
  // Exactness: the root satisfies y^2 = 1/2.
  EXPECT_EQ((*roots)[1].SignOfPolyAt(FromInts({-1, 0, 2})), 0);
}

TEST(AlgebraicPointTest, StackRootsTangentCase) {
  // Circle over x = 1 (tangent): unique root y = 0.
  AlgebraicPoint p;
  p.Append(AlgebraicNumber(R(1)));
  auto roots = p.StackRoots(X().Pow(2) + Y().Pow(2) - Polynomial(1));
  ASSERT_TRUE(roots.ok());
  ASSERT_EQ(roots->size(), 1u);
  EXPECT_EQ((*roots)[0].CompareRational(R(0)), 0);
}

TEST(AlgebraicPointTest, StackRootsOutsideCircle) {
  AlgebraicPoint p;
  p.Append(AlgebraicNumber(R(2)));
  auto roots = p.StackRoots(X().Pow(2) + Y().Pow(2) - Polynomial(1));
  ASSERT_TRUE(roots.ok());
  EXPECT_TRUE(roots->empty());
}

// ---------------------------------------------------------------- CAD

TEST(CadTest, CircleDecomposition) {
  // Unit circle: base factors should include x^2-1 (discriminant zeros at
  // x = ±1); base stack has 5 cells, full CAD 13 cells.
  auto cad = Cad::Build({X().Pow(2) + Y().Pow(2) - Polynomial(1)}, 2);
  ASSERT_TRUE(cad.ok());
  EXPECT_EQ(cad->roots().size(), 5u);  // (-inf,-1), -1, (-1,1), 1, (1,inf)
  // Stacks: 1 + 3 + 5 + 3 + 1 = 13.
  EXPECT_EQ(cad->CountLeafCells(), 13u);
}

TEST(CadTest, PaperExampleDecomposition) {
  // Parabola boundary p = 4x^2 - y - 20x + 25 and the line y = 0.
  Polynomial p = Polynomial(4) * X().Pow(2) - Y() - Polynomial(20) * X() +
                 Polynomial(25);
  auto cad = Cad::Build({p, Y()}, 2);
  ASSERT_TRUE(cad.ok());
  // Base: root x = 5/2 (where parabola touches y=0): 3 cells.
  EXPECT_EQ(cad->roots().size(), 3u);
  // Signs of p on cells are well defined and exact.
  std::size_t leaves = cad->CountLeafCells();
  EXPECT_GT(leaves, 6u);
}

TEST(CadTest, SignInvarianceSpotCheck) {
  // For the circle CAD, on each leaf cell the circle polynomial's sign at
  // the sample matches the sign at a nearby interior point of the cell.
  Polynomial circle = X().Pow(2) + Y().Pow(2) - Polynomial(1);
  auto cad = Cad::Build({circle}, 2);
  ASSERT_TRUE(cad.ok());
  int checked = 0;
  cad->ForEachCellAtDimension(2, [&](const CadCell& cell) {
    int sign = cell.sample.SignAt(circle);
    // The sample itself must satisfy the claimed sign trivially; sanity
    // check that an epsilon-approximation agrees for open cells.
    if (cell.index[0] % 2 == 1 && cell.index[1] % 2 == 1) {
      auto approx = cell.sample.Approximate(R(1, 1000000));
      Rational value = circle.Evaluate(approx);
      EXPECT_EQ(value.sign(), sign);
      ++checked;
    }
  });
  EXPECT_GT(checked, 3);
}

TEST(CadTest, RationalBetweenSeparates) {
  auto roots = AlgebraicNumber::RootsOf(FromInts({-2, 0, 1}));  // ±sqrt2
  Rational between = RationalBetween(roots[0], roots[1]);
  EXPECT_EQ(roots[0].CompareRational(between), -1);
  EXPECT_EQ(roots[1].CompareRational(between), 1);

  // Adjacent close roots.
  UPoly f = FromInts({-1, 1}) * UPoly({R(-1001, 1000), R(1)});
  auto close_roots = AlgebraicNumber::RootsOf(f);
  ASSERT_EQ(close_roots.size(), 2u);
  Rational mid = RationalBetween(close_roots[0], close_roots[1]);
  EXPECT_GT(mid, R(1));
  EXPECT_LT(mid, R(1001, 1000));
}

// ---------------------------------------------------------------- FM

TEST(FourierMotzkinTest, IntervalProjection) {
  // exists y: x <= y and y <= 5 and y >= x-3 -> x <= 5 (plus redundancy).
  GeneralizedTuple tuple;
  tuple.atoms.emplace_back(X() - Y(), RelOp::kLe);
  tuple.atoms.emplace_back(Y() - Polynomial(5), RelOp::kLe);
  auto result = EliminateExistsLinear({tuple}, 1);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  // Resulting constraint: x - 5 <= 0.
  Formula f = Formula::MakeAtom((*result)[0].atoms[0]);
  EXPECT_TRUE(f.EvaluateAt({R(5)}));
  EXPECT_TRUE(f.EvaluateAt({R(-100)}));
  EXPECT_FALSE(f.EvaluateAt({R(6)}));
}

TEST(FourierMotzkinTest, EquationSubstitution) {
  // exists y: y = 2x + 1 and y <= 7 -> 2x + 1 <= 7.
  GeneralizedTuple tuple;
  tuple.atoms.emplace_back(Y() - Polynomial(2) * X() - Polynomial(1),
                           RelOp::kEq);
  tuple.atoms.emplace_back(Y() - Polynomial(7), RelOp::kLe);
  auto result = EliminateExistsLinear({tuple}, 1);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  ASSERT_EQ((*result)[0].atoms.size(), 1u);
  EXPECT_TRUE((*result)[0].SatisfiedAt({R(3)}));
  EXPECT_FALSE((*result)[0].SatisfiedAt({R(4)}));
}

TEST(FourierMotzkinTest, StrictnessPropagation) {
  // exists y: x < y and y <= 3 -> x < 3 (strict).
  GeneralizedTuple tuple;
  tuple.atoms.emplace_back(X() - Y(), RelOp::kLt);
  tuple.atoms.emplace_back(Y() - Polynomial(3), RelOp::kLe);
  auto result = EliminateExistsLinear({tuple}, 1);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_FALSE((*result)[0].SatisfiedAt({R(3)}));
  EXPECT_TRUE((*result)[0].SatisfiedAt({R(29, 10)}));
}

TEST(FourierMotzkinTest, DisequalitySplit) {
  // exists y: y != x and 0 <= y <= 1: always true (pick y != x in [0,1]).
  GeneralizedTuple tuple;
  tuple.atoms.emplace_back(Y() - X(), RelOp::kNeq);
  tuple.atoms.emplace_back(-Y(), RelOp::kLe);
  tuple.atoms.emplace_back(Y() - Polynomial(1), RelOp::kLe);
  auto result = EliminateExistsLinear({tuple}, 1);
  ASSERT_TRUE(result.ok());
  // Union of results covers every x.
  for (std::int64_t xi = -5; xi <= 5; ++xi) {
    bool any = false;
    for (const GeneralizedTuple& t : *result) {
      if (t.SatisfiedAt({R(xi)})) any = true;
    }
    EXPECT_TRUE(any) << "x=" << xi;
  }
}

TEST(FourierMotzkinTest, UnboundedElimination) {
  // exists y: y >= x: always true.
  GeneralizedTuple tuple;
  tuple.atoms.emplace_back(X() - Y(), RelOp::kLe);
  auto result = EliminateExistsLinear({tuple}, 1);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_TRUE((*result)[0].atoms.empty());
}

TEST(FourierMotzkinTest, RejectsNonlinear) {
  GeneralizedTuple tuple;
  tuple.atoms.emplace_back(X() * Y(), RelOp::kLe);
  EXPECT_FALSE(EliminateExistsLinear({tuple}, 1).ok());
}

// ---------------------------------------------------------------- QE

// The paper's Figure 1 pipeline: Q(x) = exists y (S(x,y) and y <= 0)
// reduces to 4x^2 - 20x + 25 = 0.
TEST(QeTest, PaperFigure1Query) {
  Polynomial s_poly = Polynomial(4) * X().Pow(2) - Y() -
                      Polynomial(20) * X() + Polynomial(25);
  Formula query = Formula::Exists(
      1, Formula::And(Formula::MakeAtom(Atom(s_poly, RelOp::kLe)),
                      Formula::MakeAtom(Atom(Y(), RelOp::kLe))));
  QeStats stats;
  auto result = EliminateQuantifiers(query, 1, QeOptions{}, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(stats.used_linear_path);
  // The answer is exactly {2.5}.
  EXPECT_TRUE(result->Contains({R(5, 2)}));
  EXPECT_FALSE(result->Contains({R(0)}));
  EXPECT_FALSE(result->Contains({R(249, 100)}));
  EXPECT_FALSE(result->Contains({R(251, 100)}));
  EXPECT_FALSE(result->Contains({R(3)}));
}

TEST(QeTest, ExistsPointOnCircle) {
  // exists y (x^2 + y^2 = 1): answer -1 <= x <= 1.
  Formula query = Formula::Exists(
      1, Formula::MakeAtom(Atom(X().Pow(2) + Y().Pow(2) - Polynomial(1),
                                RelOp::kEq)));
  auto result = EliminateQuantifiers(query, 1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->Contains({R(0)}));
  EXPECT_TRUE(result->Contains({R(1)}));
  EXPECT_TRUE(result->Contains({R(-1)}));
  EXPECT_TRUE(result->Contains({R(1, 2)}));
  EXPECT_FALSE(result->Contains({R(2)}));
  EXPECT_FALSE(result->Contains({R(-101, 100)}));
}

TEST(QeTest, ForallParabolaNonNegative) {
  // forall y (y^2 - x >= 0)? Holds iff x <= 0.
  Formula query = Formula::Forall(
      1, Formula::MakeAtom(Atom(Y().Pow(2) - X(), RelOp::kGe)));
  auto result = EliminateQuantifiers(query, 1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->Contains({R(0)}));
  EXPECT_TRUE(result->Contains({R(-5)}));
  EXPECT_FALSE(result->Contains({R(1, 100)}));
  EXPECT_FALSE(result->Contains({R(4)}));
}

TEST(QeTest, SentenceDecision) {
  // exists x (x^2 = 2): true.
  auto r1 = DecideSentence(Formula::Exists(
      0, Formula::MakeAtom(Atom(X().Pow(2) - Polynomial(2), RelOp::kEq))));
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(*r1);
  // forall x (x^2 >= 0): true.
  auto r2 = DecideSentence(Formula::Forall(
      0, Formula::MakeAtom(Atom(X().Pow(2), RelOp::kGe))));
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(*r2);
  // exists x (x^2 < 0): false.
  auto r3 = DecideSentence(Formula::Exists(
      0, Formula::MakeAtom(Atom(X().Pow(2), RelOp::kLt))));
  ASSERT_TRUE(r3.ok());
  EXPECT_FALSE(*r3);
  // exists x forall y ((y - x)^2 + 1 > 0): true.
  Polynomial d = (Y() - X()) * (Y() - X()) + Polynomial(1);
  auto r4 = DecideSentence(
      Formula::Exists(0, Formula::Forall(1, Formula::MakeAtom(
                                                Atom(d, RelOp::kGt)))));
  ASSERT_TRUE(r4.ok());
  EXPECT_TRUE(*r4);
  // The paper's F_k anomaly sentence: exists x forall y (y <= x) is FALSE
  // over the reals (no biggest element) — the exact semantics gets it right.
  auto r5 = DecideSentence(Formula::Exists(
      0,
      Formula::Forall(1, Formula::MakeAtom(Atom(Y() - X(), RelOp::kLe)))));
  ASSERT_TRUE(r5.ok());
  EXPECT_FALSE(*r5);
}

TEST(QeTest, LinearPathUsedForLinearQueries) {
  // exists y (x <= y and y <= 10): linear, should use Fourier-Motzkin.
  Formula query = Formula::Exists(
      1, Formula::And(Formula::Compare(X(), RelOp::kLe, Y()),
                      Formula::Compare(Y(), RelOp::kLe, Polynomial(10))));
  QeStats stats;
  auto result = EliminateQuantifiers(query, 1, QeOptions{}, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(stats.used_linear_path);
  EXPECT_TRUE(result->Contains({R(10)}));
  EXPECT_TRUE(result->Contains({R(-100)}));
  EXPECT_FALSE(result->Contains({R(11)}));
}

TEST(QeTest, LinearForallViaComplement) {
  // forall y (0 <= y <= 1 implies y <= x)  ==  x >= 1.
  // Encoded as forall y (not(0<=y and y<=1) or y<=x).
  Formula inside = Formula::Or(
      Formula::Not(Formula::And(
          Formula::Compare(Polynomial(0), RelOp::kLe, Y()),
          Formula::Compare(Y(), RelOp::kLe, Polynomial(1)))),
      Formula::Compare(Y(), RelOp::kLe, X()));
  Formula query = Formula::Forall(1, inside);
  QeStats stats;
  auto result = EliminateQuantifiers(query, 1, QeOptions{}, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(stats.used_linear_path);
  EXPECT_TRUE(result->Contains({R(1)}));
  EXPECT_TRUE(result->Contains({R(5)}));
  EXPECT_FALSE(result->Contains({R(99, 100)}));
}

TEST(QeTest, QuantifierFreeInputPassesThrough) {
  Formula f = Formula::Compare(X(), RelOp::kLe, Polynomial(3));
  auto result = EliminateQuantifiers(f, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->Contains({R(3)}));
  EXPECT_FALSE(result->Contains({R(4)}));
}

TEST(QeTest, TwoFreeVariablesCircleInterior) {
  // exists z (z = x^2 + y^2 and z <= 1): the closed unit disk in (x, y).
  Formula query = Formula::Exists(
      2, Formula::And(
             Formula::MakeAtom(
                 Atom(Z() - X().Pow(2) - Y().Pow(2), RelOp::kEq)),
             Formula::MakeAtom(Atom(Z() - Polynomial(1), RelOp::kLe))));
  auto result = EliminateQuantifiers(query, 2);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->Contains({R(0), R(0)}));
  EXPECT_TRUE(result->Contains({R(1), R(0)}));
  EXPECT_TRUE(result->Contains({R(1, 2), R(1, 2)}));
  EXPECT_FALSE(result->Contains({R(1), R(1)}));
  EXPECT_FALSE(result->Contains({R(0), R(2)}));
}

TEST(QeTest, NestedAlternatingQuantifiers) {
  // forall x exists y (y > x): true sentence.
  auto r = DecideSentence(Formula::Forall(
      0, Formula::Exists(1, Formula::MakeAtom(Atom(X() - Y(), RelOp::kLt)))));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
}

}  // namespace
}  // namespace ccdb
