#include "engine/database.h"

#include "base/logging.h"

#include <gtest/gtest.h>

namespace ccdb {
namespace {

Rational R(std::int64_t n, std::int64_t d = 1) {
  return Rational(BigInt(n), BigInt(d));
}

ConstraintDatabase PaperDb() {
  ConstraintDatabase db;
  CCDB_CHECK(db.Define("S(x, y) := 4*x^2 - y - 20*x + 25 <= 0").ok());
  return db;
}

TEST(DatabaseTest, EndToEndPaperPipeline) {
  // The complete Figure 1 run: instantiate -> QE -> numerical evaluation.
  ConstraintDatabase db = PaperDb();
  auto solutions =
      db.Solve("exists y (S(x, y) and y <= 0)", R(1, 1000000));
  ASSERT_TRUE(solutions.ok()) << solutions.status().ToString();
  ASSERT_EQ(solutions->size(), 1u);
  EXPECT_EQ((*solutions)[0][0], R(5, 2));
}

TEST(DatabaseTest, SurfaceQueryScalar) {
  ConstraintDatabase db = PaperDb();
  auto result = db.Query("SURFACE[x, y](S(x, y) and y <= 9)(z)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->has_scalar);
  EXPECT_EQ(result->scalar.exact_value, R(18));
}

TEST(DatabaseTest, RegisterQueryOutput) {
  ConstraintDatabase db = PaperDb();
  auto q = db.Query("exists y (S(x, y) and y <= 0)");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(db.Register("Answer", q->relation).ok());
  auto contains = db.Contains("Answer", {R(5, 2)});
  ASSERT_TRUE(contains.ok());
  EXPECT_TRUE(*contains);
  auto reuse = db.Query("EVAL[x](Answer(x))(r)");
  ASSERT_TRUE(reuse.ok()) << reuse.status().ToString();
  EXPECT_TRUE(reuse->relation.Contains({R(5, 2)}));
}

TEST(DatabaseTest, FinitePrecisionQuery) {
  ConstraintDatabase db;
  ASSERT_TRUE(db.Define("T(x, y) := 100*x - y <= 0 and y <= 200").ok());
  FpQeStats stats;
  auto generous = db.QueryFp("exists y (T(x, y))", 64, &stats);
  ASSERT_TRUE(generous.ok()) << generous.status().ToString();
  EXPECT_TRUE(stats.defined);
  EXPECT_TRUE(generous->relation.Contains({R(2)}));
  EXPECT_FALSE(generous->relation.Contains({R(3)}));

  auto starved = db.QueryFp("exists y (T(x, y))", 2, &stats);
  EXPECT_FALSE(starved.ok());
  EXPECT_EQ(starved.status().code(), StatusCode::kUndefined);
}

TEST(DatabaseTest, SaveLoadRoundTrip) {
  ConstraintDatabase db = PaperDb();
  std::string path = "/tmp/ccdb_database_test.txt";
  ASSERT_TRUE(db.Save(path).ok());
  ConstraintDatabase loaded;
  ASSERT_TRUE(loaded.Load(path).ok());
  auto result = loaded.Query("SURFACE[x, y](S(x, y) and y <= 9)(z)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->scalar.exact_value, R(18));
  std::remove(path.c_str());
}

TEST(DatabaseTest, Errors) {
  ConstraintDatabase db = PaperDb();
  EXPECT_FALSE(db.Define("S(x) := x = 0").ok());  // duplicate
  EXPECT_FALSE(db.Drop("Nope").ok());
  EXPECT_FALSE(db.Query("Unknown(x)").ok());
  EXPECT_FALSE(db.Relation("Unknown").ok());
  EXPECT_TRUE(db.Relation("S").ok());
  EXPECT_EQ(db.RelationNames().size(), 1u);
}

TEST(DatabaseTest, InfiniteAnswerSetSolveFails) {
  ConstraintDatabase db = PaperDb();
  auto result = db.Solve("exists y (S(x, y))", R(1, 100));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace ccdb
