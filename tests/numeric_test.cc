#include "numeric/numerical_eval.h"

#include <cmath>

#include <gtest/gtest.h>

#include "numeric/approx.h"
#include "numeric/quadrature.h"

namespace ccdb {
namespace {

Rational R(std::int64_t n, std::int64_t d = 1) {
  return Rational(BigInt(n), BigInt(d));
}

Polynomial X() { return Polynomial::Var(0); }
Polynomial Y() { return Polynomial::Var(1); }

ConstraintRelation SingleAtomRelation(int arity, Polynomial p, RelOp op) {
  ConstraintRelation rel(arity);
  GeneralizedTuple tuple;
  tuple.atoms.emplace_back(std::move(p), op);
  rel.AddTuple(std::move(tuple));
  return rel;
}

// -------------------------------------------------- numerical evaluation

TEST(NumericalEvalTest, PaperPipelineRoot) {
  // Step 3 of Figure 1: 4x^2 - 20x + 25 = 0 evaluates numerically to 2.5.
  ConstraintRelation rel = SingleAtomRelation(
      1,
      Polynomial(4) * X().Pow(2) - Polynomial(20) * X() + Polynomial(25),
      RelOp::kEq);
  auto solutions = ApproximateSolutions(rel, R(1, 1000000));
  ASSERT_TRUE(solutions.ok()) << solutions.status().ToString();
  ASSERT_EQ(solutions->size(), 1u);
  EXPECT_EQ((*solutions)[0][0], R(5, 2));  // exact rational root
}

TEST(NumericalEvalTest, IrrationalRootsApproximated) {
  ConstraintRelation rel =
      SingleAtomRelation(1, X().Pow(2) - Polynomial(2), RelOp::kEq);
  auto solutions = ApproximateSolutions(rel, R(1, 1000000));
  ASSERT_TRUE(solutions.ok());
  ASSERT_EQ(solutions->size(), 2u);
  EXPECT_NEAR((*solutions)[0][0].ToDouble(), -std::sqrt(2.0), 1e-6);
  EXPECT_NEAR((*solutions)[1][0].ToDouble(), std::sqrt(2.0), 1e-6);
}

TEST(NumericalEvalTest, InfiniteSetDetected) {
  ConstraintRelation rel =
      SingleAtomRelation(1, X().Pow(2) - Polynomial(2), RelOp::kLe);
  auto eval = EvaluateNumerically(rel);
  ASSERT_TRUE(eval.ok());
  EXPECT_FALSE(eval->finite);
  EXPECT_FALSE(ApproximateSolutions(rel, R(1, 100)).ok());
}

TEST(NumericalEvalTest, TwoDimensionalFiniteSet) {
  // x^2 + y^2 = 1 and y = x: two intersection points.
  ConstraintRelation rel(2);
  GeneralizedTuple tuple;
  tuple.atoms.emplace_back(X().Pow(2) + Y().Pow(2) - Polynomial(1), RelOp::kEq);
  tuple.atoms.emplace_back(Y() - X(), RelOp::kEq);
  rel.AddTuple(std::move(tuple));
  auto eval = EvaluateNumerically(rel);
  ASSERT_TRUE(eval.ok()) << eval.status().ToString();
  ASSERT_TRUE(eval->finite);
  ASSERT_EQ(eval->points.size(), 2u);
  double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  auto approx = eval->points[1].Approximate(R(1, 1000000));
  EXPECT_NEAR(approx[0].ToDouble(), inv_sqrt2, 1e-6);
  EXPECT_NEAR(approx[1].ToDouble(), inv_sqrt2, 1e-6);
}

TEST(NumericalEvalTest, EmptySet) {
  ConstraintRelation rel =
      SingleAtomRelation(1, X().Pow(2) + Polynomial(1), RelOp::kEq);
  auto eval = EvaluateNumerically(rel);
  ASSERT_TRUE(eval.ok());
  EXPECT_TRUE(eval->finite);
  EXPECT_TRUE(eval->points.empty());
}

TEST(DecomposeUnaryTest, IntervalAndPoints) {
  // (x >= 0 and x <= 1) or x = 3.
  ConstraintRelation rel(1);
  GeneralizedTuple interval;
  interval.atoms.emplace_back(-X(), RelOp::kLe);
  interval.atoms.emplace_back(X() - Polynomial(1), RelOp::kLe);
  rel.AddTuple(std::move(interval));
  GeneralizedTuple point;
  point.atoms.emplace_back(X() - Polynomial(3), RelOp::kEq);
  rel.AddTuple(std::move(point));

  auto decomposition = DecomposeUnary(rel);
  ASSERT_TRUE(decomposition.ok());
  // Pieces: {0}, (0,1), {1}, {3}.
  ASSERT_EQ(decomposition->pieces.size(), 4u);
  EXPECT_TRUE(decomposition->pieces[0].is_point);
  EXPECT_FALSE(decomposition->pieces[1].is_point);
  EXPECT_TRUE(decomposition->pieces[2].is_point);
  EXPECT_TRUE(decomposition->pieces[3].is_point);
  EXPECT_EQ(decomposition->pieces[3].lower.rational_value(), R(3));
}

TEST(DecomposeUnaryTest, UnboundedPieces) {
  ConstraintRelation rel = SingleAtomRelation(1, X(), RelOp::kGe);
  auto decomposition = DecomposeUnary(rel);
  ASSERT_TRUE(decomposition.ok());
  ASSERT_EQ(decomposition->pieces.size(), 2u);  // {0} and (0, +inf)
  EXPECT_TRUE(decomposition->pieces[0].is_point);
  EXPECT_FALSE(decomposition->pieces[1].has_upper);
}

// -------------------------------------------------- quadrature

TEST(QuadratureTest, PolynomialExactIntegral) {
  // ∫_1^4 (-4x^2 + 20x - 25) dx = -9 (the paper's F(4)-F(1) computation).
  UPoly p({R(-25), R(20), R(-4)});
  EXPECT_EQ(IntegratePolynomial(p, R(1), R(4)), R(-9));
  // And 27 - (-9)... the paper's surface: 27 + (-9)?? Check: area = 18.
  EXPECT_EQ(R(27) + IntegratePolynomial(p, R(1), R(4)), R(18));
}

TEST(QuadratureTest, AntiDerivative) {
  UPoly p({R(-25), R(20), R(-4)});
  UPoly primitive = AntiDerivative(p);
  // F(x) = -4/3 x^3 + 10 x^2 - 25 x.
  EXPECT_EQ(primitive.coefficient(3), R(-4, 3));
  EXPECT_EQ(primitive.coefficient(2), R(10));
  EXPECT_EQ(primitive.coefficient(1), R(-25));
  EXPECT_EQ(primitive.coefficient(0), R(0));
}

TEST(QuadratureTest, AdaptiveSimpsonSmoothFunctions) {
  auto quad = AdaptiveSimpson([](double x) { return std::sin(x); }, 0.0,
                              M_PI, 1e-10);
  ASSERT_TRUE(quad.ok());
  EXPECT_NEAR(quad->value, 2.0, 1e-8);

  auto quad2 = AdaptiveSimpson([](double x) { return std::exp(x); }, 0.0, 1.0,
                               1e-10);
  ASSERT_TRUE(quad2.ok());
  EXPECT_NEAR(quad2->value, std::exp(1.0) - 1.0, 1e-8);

  auto zero = AdaptiveSimpson([](double) { return 1.0; }, 2.0, 2.0, 1e-10);
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(zero->value, 0.0);
}

TEST(QuadratureTest, KinkHandled) {
  auto quad = AdaptiveSimpson([](double x) { return std::abs(x); }, -1.0, 1.0,
                              1e-9);
  ASSERT_TRUE(quad.ok());
  EXPECT_NEAR(quad->value, 1.0, 1e-7);
}

// -------------------------------------------------- approximation modules

TEST(ApproxTest, ExpChebyshevAccuracy) {
  ApproxModule module(8);
  auto result = module.Approximate(AnalyticKind::kExp, Interval(R(0), R(1)));
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->poly.degree(), 8);
  EXPECT_LT(result->max_error_estimate, 1e-8);
  // Spot check at x = 1/2.
  double approx = result->poly.Evaluate(R(1, 2)).ToDouble();
  EXPECT_NEAR(approx, std::exp(0.5), 1e-8);
  EXPECT_EQ(module.call_count(), 1u);
}

TEST(ApproxTest, HigherOrderReducesError) {
  Interval domain(R(-2), R(2));
  double previous = 1e9;
  for (int order : {2, 4, 8, 12}) {
    ApproxModule module(order);
    auto result = module.Approximate(AnalyticKind::kSin, domain);
    ASSERT_TRUE(result.ok());
    EXPECT_LT(result->max_error_estimate, previous);
    previous = result->max_error_estimate;
  }
  EXPECT_LT(previous, 1e-7);
}

TEST(ApproxTest, SingularDomainRejected) {
  ApproxModule module(6);
  // log undefined on [-1, 1] (the paper's log(x-3) at x=3 caveat).
  EXPECT_FALSE(
      module.Approximate(AnalyticKind::kLog, Interval(R(-1), R(1))).ok());
  EXPECT_TRUE(
      module.Approximate(AnalyticKind::kLog, Interval(R(1), R(2))).ok());
  EXPECT_FALSE(
      module.Approximate(AnalyticKind::kSqrt, Interval(R(-1), R(1))).ok());
}

TEST(ApproxTest, ABaseUniform) {
  ABase base = ABase::Uniform(R(0), R(10), 5);
  ASSERT_EQ(base.breakpoints.size(), 6u);
  auto intervals = base.Intervals();
  ASSERT_EQ(intervals.size(), 5u);
  EXPECT_EQ(intervals[0].lo(), R(0));
  EXPECT_EQ(intervals[0].hi(), R(2));
  EXPECT_EQ(intervals[4].hi(), R(10));
}

TEST(ApproxTest, AnalyticNames) {
  EXPECT_TRUE(AnalyticKindFromName("exp").ok());
  EXPECT_TRUE(AnalyticKindFromName("atan").ok());
  EXPECT_FALSE(AnalyticKindFromName("gamma").ok());
  EXPECT_STREQ(AnalyticKindName(AnalyticKind::kSqrt), "sqrt");
}

}  // namespace
}  // namespace ccdb
