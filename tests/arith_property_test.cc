// Parameterized property sweeps over the arithmetic substrate: interval
// enclosure soundness, FloatK rounding laws, Z_k partiality laws, and
// BigInt algebraic identities — the invariants every higher layer builds
// on.

#include <algorithm>
#include <random>

#include <gtest/gtest.h>

#include "arith/floatk.h"
#include "arith/interval.h"
#include "arith/zsplit.h"
#include "property_env.h"

namespace ccdb {
namespace {

Rational R(std::int64_t n, std::int64_t d = 1) {
  return Rational(BigInt(n), BigInt(d));
}

class IntervalPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(IntervalPropertyTest, ArithmeticEnclosesSampledValues) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<std::int64_t> dist(-40, 40);
  auto random_interval = [&]() {
    std::int64_t a = dist(rng), b = dist(rng);
    return Interval(R(std::min(a, b), 4), R(std::max(a, b), 4));
  };
  for (int trial = 0; trial < 40; ++trial) {
    Interval x = random_interval();
    Interval y = random_interval();
    // Sample points within x, y.
    for (int s = 0; s < 4; ++s) {
      Rational px = x.lo() + (x.hi() - x.lo()) * R(s, 3);
      Rational py = y.lo() + (y.hi() - y.lo()) * R(3 - s, 3);
      EXPECT_TRUE((x + y).Contains(px + py));
      EXPECT_TRUE((x - y).Contains(px - py));
      EXPECT_TRUE((x * y).Contains(px * py));
      EXPECT_TRUE(x.Pow(2).Contains(px * px));
      EXPECT_TRUE(x.Pow(3).Contains(px * px * px));
      EXPECT_TRUE((-x).Contains(-px));
      EXPECT_TRUE(x.Scale(R(-7, 2)).Contains(px * R(-7, 2)));
    }
    // Inclusion monotonicity: shrinking inputs shrinks outputs.
    Interval x_mid(x.Midpoint());
    EXPECT_TRUE((x * y).ContainsInterval(x_mid * y));
    EXPECT_TRUE((x + y).ContainsInterval(x_mid + y));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalPropertyTest,
                         ::testing::Range(100, 108));

class FloatKPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FloatKPropertyTest, RoundingIsMonotoneAndWithinHalfUlp) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<std::int64_t> dist(1, 100000);
  FpFormat format{10, 64};
  Rational previous_value(0);
  Rational previous_rounded(0);
  bool have_previous = false;
  std::vector<Rational> values;
  for (int i = 0; i < 60; ++i) {
    values.push_back(R(dist(rng), dist(rng)));
  }
  std::sort(values.begin(), values.end());
  for (const Rational& value : values) {
    auto rounded = FloatK::FromRational(value, format, FpMode::kRound);
    ASSERT_TRUE(rounded.ok()) << value.ToString();
    Rational result = rounded->ToRational();
    // Half-ulp bound: |round(v) - v| <= v * 2^-10.
    EXPECT_LE((result - value).Abs(),
              value * Rational(BigInt(1), BigInt::Pow2(10)));
    // Monotonicity: v1 <= v2 implies round(v1) <= round(v2).
    if (have_previous) {
      EXPECT_LE(previous_rounded, result)
          << previous_value.ToString() << " -> " << value.ToString();
    }
    previous_value = value;
    previous_rounded = result;
    have_previous = true;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FloatKPropertyTest,
                         ::testing::Range(200, 206));

class ZkPropertyTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ZkPropertyTest, PartialOperationsExactlyWhenRepresentable) {
  const std::uint32_t k = GetParam();
  PartialZk zk(k);
  const std::int64_t bound = (1ll << k) - 1;
  for (std::int64_t a = -bound; a <= bound; a += 3) {
    for (std::int64_t b = -bound; b <= bound; b += 5) {
      auto sum = zk.Add(BigInt(a), BigInt(b));
      bool sum_fits = std::abs(a + b) <= bound;
      EXPECT_EQ(sum.ok(), sum_fits) << a << "+" << b;
      if (sum.ok()) {
        EXPECT_EQ(sum->ToInt64(), a + b);
      }
      auto product = zk.Mul(BigInt(a), BigInt(b));
      bool product_fits = std::abs(a * b) <= bound;
      EXPECT_EQ(product.ok(), product_fits) << a << "*" << b;
      if (product.ok()) {
        EXPECT_EQ(product->ToInt64(), a * b);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallK, ZkPropertyTest,
                         ::testing::Values(3u, 4u, 5u, 6u));

class BigIntPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BigIntPropertyTest, AlgebraicIdentities) {
  std::mt19937_64 rng(GetParam());
  auto random_big = [&]() {
    BigInt value(static_cast<std::int64_t>(rng() % 2000000) - 1000000);
    // Occasionally grow beyond 64 bits, or land right on the word boundary
    // where the inline representation spills.
    std::uint64_t c = rng() % 6;
    if (c == 0) value = value * value * value;
    if (c == 1) value = value + BigInt(value.is_negative() ? INT64_MIN + 1000000
                                                          : INT64_MAX - 1000000);
    return value;
  };
  const int trials = 200 * ccdb_test::PropertyIterScale();
  for (int trial = 0; trial < trials; ++trial) {
    BigInt a = random_big();
    BigInt b = random_big();
    BigInt c = random_big();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ((a - b) + b, a);
    EXPECT_EQ(-(-a), a);
    if (!b.is_zero()) {
      auto [q, r] = a.DivMod(b);
      EXPECT_EQ(q * b + r, a);
      EXPECT_TRUE(r.Abs() < b.Abs());
    }
    // gcd divides both and any common divisor divides the gcd (checked via
    // products).
    BigInt g = BigInt::Gcd(a, b);
    if (!g.is_zero()) {
      EXPECT_TRUE((a % g).is_zero());
      EXPECT_TRUE((b % g).is_zero());
      BigInt scaled_gcd = BigInt::Gcd(a * c, b * c);
      EXPECT_TRUE((scaled_gcd % g).is_zero());
    }
    // Bit length laws.
    if (!a.is_zero() && !b.is_zero()) {
      EXPECT_LE((a * b).bit_length(), a.bit_length() + b.bit_length());
      EXPECT_GE((a * b).bit_length(), a.bit_length() + b.bit_length() - 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntPropertyTest,
                         ::testing::Range(300, 308));

}  // namespace
}  // namespace ccdb
