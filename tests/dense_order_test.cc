#include "qe/dense_order.h"

#include <random>

#include <gtest/gtest.h>

#include "qe/qe.h"

namespace ccdb {
namespace {

Rational R(std::int64_t n, std::int64_t d = 1) {
  return Rational(BigInt(n), BigInt(d));
}

Polynomial X() { return Polynomial::Var(0); }
Polynomial Y() { return Polynomial::Var(1); }
Polynomial Z() { return Polynomial::Var(2); }

GeneralizedTuple Tuple(std::initializer_list<Atom> atoms) {
  GeneralizedTuple t;
  for (const Atom& a : atoms) t.atoms.push_back(a);
  return t;
}

TEST(DenseOrderTest, RecognizesDenseOrderAtoms) {
  // x - y < 0, x - 3 <= 0, constants: dense order.
  EXPECT_TRUE(IsDenseOrderSystem(
      {Tuple({Atom(X() - Y(), RelOp::kLt), Atom(X() - Polynomial(3),
                                                RelOp::kLe)})}));
  // x + y: not a difference.
  EXPECT_FALSE(IsDenseOrderSystem({Tuple({Atom(X() + Y(), RelOp::kLt)})}));
  // 2x - y: non-unit coefficient.
  EXPECT_FALSE(IsDenseOrderSystem(
      {Tuple({Atom(Polynomial(2) * X() - Y(), RelOp::kLt)})}));
  // x - y + 1: offset difference encodes addition.
  EXPECT_FALSE(IsDenseOrderSystem(
      {Tuple({Atom(X() - Y() + Polynomial(1), RelOp::kLt)})}));
  // x*y: nonlinear.
  EXPECT_FALSE(IsDenseOrderSystem({Tuple({Atom(X() * Y(), RelOp::kEq)})}));
  // Constant-only atoms are allowed.
  EXPECT_TRUE(IsDenseOrderSystem({Tuple({Atom(Polynomial(1), RelOp::kGt)})}));
}

TEST(DenseOrderTest, BetweennessElimination) {
  // exists y (x < y and y < z): by density, equivalent to x < z.
  GeneralizedTuple tuple = Tuple(
      {Atom(X() - Y(), RelOp::kLt), Atom(Y() - Z(), RelOp::kLt)});
  auto result = EliminateExistsDenseOrder({tuple}, 1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 1u);
  EXPECT_TRUE((*result)[0].SatisfiedAt({R(0), R(0), R(1)}));
  EXPECT_FALSE((*result)[0].SatisfiedAt({R(1), R(0), R(0)}));
  EXPECT_FALSE((*result)[0].SatisfiedAt({R(1), R(0), R(1)}));  // x = z
  EXPECT_TRUE(IsDenseOrderSystem(*result));
}

TEST(DenseOrderTest, ClosureOverRandomSystems) {
  // Elimination stays inside the dense-order language (the closure
  // property the module asserts), exhaustively over random systems.
  std::mt19937_64 rng(91);
  std::uniform_int_distribution<std::int64_t> constant(-5, 5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<GeneralizedTuple> tuples;
    for (int t = 0; t < 2; ++t) {
      GeneralizedTuple tuple;
      for (int a = 0; a < 3; ++a) {
        int mode = static_cast<int>(rng() % 3);
        RelOp ops[] = {RelOp::kLt, RelOp::kLe, RelOp::kEq, RelOp::kNeq};
        RelOp op = ops[rng() % 4];
        int v1 = static_cast<int>(rng() % 3);
        int v2 = static_cast<int>(rng() % 3);
        if (mode == 0 && v1 != v2) {
          tuple.atoms.emplace_back(
              Polynomial::Var(v1) - Polynomial::Var(v2), op);
        } else {
          tuple.atoms.emplace_back(
              Polynomial::Var(v1) - Polynomial(constant(rng)), op);
        }
      }
      tuples.push_back(std::move(tuple));
    }
    ASSERT_TRUE(IsDenseOrderSystem(tuples));
    auto result = EliminateExistsDenseOrder(tuples, 2);
    ASSERT_TRUE(result.ok()) << "trial " << trial;
    EXPECT_TRUE(IsDenseOrderSystem(*result)) << "trial " << trial;
  }
}

TEST(DenseOrderTest, QeStatsReportDenseOrderPath) {
  // exists y (x < y and y < 10): the engine should recognize DO input.
  Formula query = Formula::Exists(
      1, Formula::And(Formula::MakeAtom(Atom(X() - Y(), RelOp::kLt)),
                      Formula::MakeAtom(
                          Atom(Y() - Polynomial(10), RelOp::kLt))));
  QeStats stats;
  auto result = EliminateQuantifiers(query, 1, QeOptions{}, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(stats.used_linear_path);
  EXPECT_TRUE(stats.used_dense_order_path);
  EXPECT_TRUE(result->Contains({R(5)}));
  EXPECT_FALSE(result->Contains({R(10)}));

  // With a non-unit coefficient the DO flag drops but linear stays.
  Formula linear = Formula::Exists(
      1, Formula::MakeAtom(
             Atom(Polynomial(2) * X() - Y(), RelOp::kLt)));
  auto r2 = EliminateQuantifiers(linear, 1, QeOptions{}, &stats);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(stats.used_linear_path);
  EXPECT_FALSE(stats.used_dense_order_path);
}

TEST(DenseOrderTest, OrderInsensitivityToExactValues) {
  // The paper's Theorem 4.2 argument: order-only queries depend only on
  // the relative order of the constants. Scale all constants by a huge
  // factor; the query's answer pattern (relative to the scaled grid) is
  // unchanged, and the finite-precision pipeline bits stay proportional
  // to the constants' bits with constant factor ~1.
  for (std::int64_t scale : {1ll, 1000ll, 1000000ll}) {
    GeneralizedTuple tuple = Tuple(
        {Atom(X() - Y(), RelOp::kLt),
         Atom(Y() - Polynomial(2 * scale), RelOp::kLt)});
    auto result = EliminateExistsDenseOrder({tuple}, 1);
    ASSERT_TRUE(result.ok());
    // Answer: x < 2*scale.
    bool in = false;
    for (const auto& t : *result) {
      if (t.SatisfiedAt({R(scale), R(0)})) in = true;
    }
    EXPECT_TRUE(in) << scale;
    bool out = false;
    for (const auto& t : *result) {
      if (t.SatisfiedAt({R(3 * scale), R(0)})) out = true;
    }
    EXPECT_FALSE(out) << scale;
  }
}

TEST(DenseOrderTest, RejectsNonDenseOrder) {
  GeneralizedTuple tuple = Tuple({Atom(X() + Y(), RelOp::kLt)});
  auto result = EliminateExistsDenseOrder({tuple}, 1);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace ccdb
