// Spatial example: a miniature land registry built on constraint
// relations — the "spatial or geographical applications" the paper's
// introduction motivates.
//
// Parcels are semi-algebraic regions (polygons and one parabolic river
// bank) stored as generalized tuples. The example runs:
//   * point-in-parcel membership,
//   * parcel areas via the SURFACE aggregate,
//   * a zoning query with quantifier elimination (which parcels intersect
//     the flood zone), and
//   * catalog persistence (save / reload round trip).

#include <cstdio>

#include "engine/database.h"

namespace {

void Check(const ccdb::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

void PrintArea(ccdb::ConstraintDatabase& db, const char* name,
               const char* query) {
  auto area = db.Query(query);
  if (!area.ok()) {
    std::printf("  %-10s area query failed: %s\n", name,
                area.status().ToString().c_str());
    return;
  }
  if (area->scalar.exact) {
    std::printf("  %-10s area = %s (exact)\n", name,
                area->scalar.exact_value.ToString().c_str());
  } else {
    std::printf("  %-10s area ~= %.6f (+-%.1e)\n", name, area->scalar.Value(),
                area->scalar.error_estimate);
  }
}

}  // namespace

int main() {
  ccdb::ConstraintDatabase db;

  // Parcels: a square farm, a triangular orchard, and a parcel bounded by
  // a parabolic river bank y >= x^2 (truncated).
  Check(db.Define("Farm(x, y) := 0 <= x and x <= 4 and 0 <= y and y <= 4"),
        "define Farm");
  Check(db.Define(
            "Orchard(x, y) := x >= 5 and y >= 0 and x + y <= 9"),
        "define Orchard");
  Check(db.Define("River(x, y) := y >= x^2 and y <= 4 and -2 <= x and x <= 2"),
        "define River");
  // The flood zone: everything below the line y = 1.
  Check(db.Define("Flood(x, y) := y <= 1"), "define Flood");

  std::printf("Land registry with %zu relations\n\n",
              db.RelationNames().size());

  // --- membership -------------------------------------------------------
  auto inside = db.Contains("River", {ccdb::Rational(1), ccdb::Rational(2)});
  std::printf("River bank parcel contains (1, 2)?  %s\n",
              inside.ok() && *inside ? "yes" : "no");
  auto outside = db.Contains("River", {ccdb::Rational(2),
                                       ccdb::Rational(1)});
  std::printf("River bank parcel contains (2, 1)?  %s\n\n",
              outside.ok() && *outside ? "yes" : "no");

  // --- areas (SURFACE aggregate) -----------------------------------------
  std::printf("Parcel areas:\n");
  PrintArea(db, "Farm", "SURFACE[x, y](Farm(x, y))(a)");
  PrintArea(db, "Orchard", "SURFACE[x, y](Orchard(x, y))(a)");
  // The river parcel: area of {x^2 <= y <= 4, |x| <= 2} = 2*4 + ... =
  // 16 - 16/3 = 32/3 exactly (graph boundaries -> exact path).
  PrintArea(db, "River", "SURFACE[x, y](River(x, y))(a)");

  // --- zoning: which x-slices of the farm lie in the flood zone? --------
  const char* zoning = "exists y (Farm(x, y) and Flood(x, y))";
  auto zone = db.Query(zoning);
  if (zone.ok()) {
    std::printf("\nFlood-affected farm frontage (closed form over x): %s\n",
                zone->relation.ToString({"x"}).c_str());
  }

  // Does the orchard touch the flood zone at all? A sentence (0-ary query).
  auto touches = db.Query("exists x (exists y (Orchard(x, y) and "
                          "Flood(x, y)))");
  if (touches.ok()) {
    std::printf("Orchard intersects flood zone?  %s\n",
                touches->relation.is_empty_syntactically() ? "no" : "yes");
  }

  // Flooded area of the river parcel: SURFACE of the intersection.
  PrintArea(db, "River∩Flood",
            "SURFACE[x, y](River(x, y) and Flood(x, y))(a)");

  // --- persistence -------------------------------------------------------
  const char* path = "/tmp/ccdb_land_registry.txt";
  Check(db.Save(path), "save");
  ccdb::ConstraintDatabase reloaded;
  Check(reloaded.Load(path), "load");
  std::printf("\nCatalog round-tripped through %s (%zu relations)\n", path,
              reloaded.RelationNames().size());
  return 0;
}
