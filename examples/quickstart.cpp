// Quickstart: the running example of "Towards Practical Constraint
// Databases" (Grumbach & Su, PODS 1996), end to end.
//
// The relation S(x, y) ≡ 4x² − y − 20x + 25 ≤ 0 is stored as a constraint
// relation; the query Q(x) = ∃y (S(x,y) ∧ y ≤ 0) is evaluated through the
// paper's Figure 1 pipeline (instantiation → quantifier elimination →
// numerical evaluation), and the Example 5.1 aggregate query
// SURFACE[x,y](S(x,y) ∧ y ≤ 9)(z) is evaluated through CALC_F.

#include <cstdio>

#include "engine/database.h"

int main() {
  ccdb::ConstraintDatabase db;

  // --- store the paper's relation -------------------------------------
  ccdb::Status defined = db.Define("S(x, y) := 4*x^2 - y - 20*x + 25 <= 0");
  if (!defined.ok()) {
    std::fprintf(stderr, "define failed: %s\n", defined.ToString().c_str());
    return 1;
  }
  std::printf("Stored S(x, y) := 4*x^2 - y - 20*x + 25 <= 0\n\n");

  // --- membership (Section 2: "checking if a specific point is in S") --
  auto on_boundary = db.Contains("S", {ccdb::Rational(ccdb::BigInt(5),
                                                      ccdb::BigInt(2)),
                                       ccdb::Rational(0)});
  std::printf("S contains (2.5, 0)?  %s\n",
              on_boundary.ok() && *on_boundary ? "yes" : "no");

  // --- Figure 1: Q(x) = exists y (S(x,y) and y <= 0) -------------------
  const char* query = "exists y (S(x, y) and y <= 0)";
  std::printf("\nQuery: %s\n", query);

  auto closed_form = db.Query(query);
  if (!closed_form.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 closed_form.status().ToString().c_str());
    return 1;
  }
  std::printf("Closed form (quantifier eliminated): %s\n",
              closed_form->relation.ToString({"x"}).c_str());

  auto solutions = db.Solve(query, ccdb::Rational(ccdb::BigInt(1),
                                                  ccdb::BigInt(1000000)));
  if (!solutions.ok()) {
    std::fprintf(stderr, "solve failed: %s\n",
                 solutions.status().ToString().c_str());
    return 1;
  }
  std::printf("Numerical evaluation: ");
  for (const auto& point : *solutions) {
    std::printf("x = %s  ", point[0].ToString().c_str());
  }
  std::printf("(the paper's answer: x = 2.5)\n");

  // --- Example 5.1: SURFACE aggregate ----------------------------------
  const char* surface_query = "SURFACE[x, y](S(x, y) and y <= 9)(z)";
  std::printf("\nQuery: %s\n", surface_query);
  auto area = db.Query(surface_query);
  if (!area.ok()) {
    std::fprintf(stderr, "surface query failed: %s\n",
                 area.status().ToString().c_str());
    return 1;
  }
  if (area->has_scalar && area->scalar.exact) {
    std::printf("SURFACE = %s exactly (the paper computes 18)\n",
                area->scalar.exact_value.ToString().c_str());
  } else if (area->has_scalar) {
    std::printf("SURFACE ~= %.9f\n", area->scalar.Value());
  }

  // --- finite precision semantics (Section 4) --------------------------
  std::printf("\nFinite precision semantics FO^F_QE:\n");
  ccdb::FpQeStats stats;
  auto fp_ok = db.QueryFp(query, /*k=*/64, &stats);
  std::printf("  k = 64: %s (needs %llu bits)\n",
              fp_ok.ok() ? "defined" : fp_ok.status().ToString().c_str(),
              static_cast<unsigned long long>(stats.max_bits));
  auto fp_starved = db.QueryFp(query, /*k=*/4, &stats);
  std::printf("  k = 4:  %s\n", fp_starved.ok()
                                    ? "defined"
                                    : fp_starved.status().ToString().c_str());
  return 0;
}
