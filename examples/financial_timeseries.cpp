// Financial example: the paper's own motivation for AVG — "e.g. average
// value of a bond over a period of time" (Section 2). A bond's value is a
// piecewise-polynomial function of time stored as a binary constraint
// relation Bond(t, v); CALC_F aggregate queries then compute the average,
// extremes, and time-above-par, none of which are expressible in the plain
// relational calculus of [KKR90].

#include <cstdio>

#include "engine/database.h"

namespace {

void Check(const ccdb::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

void PrintScalar(ccdb::ConstraintDatabase& db, const char* label,
                 const std::string& query) {
  auto result = db.Query(query);
  if (!result.ok()) {
    std::printf("  %-28s %s\n", label, result.status().ToString().c_str());
    return;
  }
  if (result->scalar.exact) {
    std::printf("  %-28s %s (exact = %.6f)\n", label,
                result->scalar.exact_value.ToString().c_str(),
                result->scalar.Value());
  } else {
    std::printf("  %-28s %.6f\n", label, result->scalar.Value());
  }
}

}  // namespace

int main() {
  ccdb::ConstraintDatabase db;

  // Bond value over t in [0, 10] (par = 100):
  //   [0, 4]  : v = 100 + 2t          (linear rally to 108)
  //   [4, 8]  : v = 108 - (t - 4)^2   (quadratic drawdown to 92)
  //   [8, 10] : v = 92 + 3*(t - 8)    (recovery to 98)
  Check(db.Define(
            "Bond(t, v) := (0 <= t and t <= 4 and v = 100 + 2*t) or "
            "(4 <= t and t <= 8 and v = 108 - (t - 4)^2) or "
            "(8 <= t and t <= 10 and v = 92 + 3*(t - 8))"),
        "define Bond");
  std::printf("Bond(t, v): piecewise polynomial price path on [0, 10]\n\n");

  // The set of attained values: projection exists t (Bond(t, v)).
  auto values = db.Query("exists t (Bond(t, v))");
  if (values.ok()) {
    std::printf("Attained value set (closed form over v):\n  %s\n\n",
                values->relation.ToString({"v"}).c_str());
  }

  std::printf("Aggregate analytics over the whole horizon:\n");
  // MIN / MAX of the attained values.
  PrintScalar(db, "lowest value", "MIN[v](exists t (Bond(t, v)))(m)");
  PrintScalar(db, "highest value", "MAX[v](exists t (Bond(t, v)))(m)");
  // The paper's AVG-of-a-bond query: time-average of v(t) equals the area
  // under the curve divided by the horizon. SURFACE under the curve (above
  // 0) over [0,10] = integral of v(t) dt; horizon length = 10.
  PrintScalar(db, "area under price curve",
              "SURFACE[t, u](exists v (Bond(t, v) and 0 <= u and u <= v))(a)");
  PrintScalar(db, "horizon length",
              "LENGTH[t](exists v (Bond(t, v)))(len)");

  // Time above par: LENGTH of {t : v(t) >= 100}.
  PrintScalar(db, "time above par (v >= 100)",
              "LENGTH[t](exists v (Bond(t, v) and v >= 100))(len)");

  // When does the bond sit exactly at par? Numerical evaluation of a
  // finite answer set (Theorem 3.2).
  auto par_times = db.Solve("exists v (Bond(t, v) and v = 100 and t > 0)",
                            ccdb::Rational(ccdb::BigInt(1),
                                           ccdb::BigInt(1000000)));
  if (par_times.ok()) {
    std::printf("\nTimes at par (t > 0):");
    for (const auto& point : *par_times) {
      std::printf("  t ~= %.6f", point[0].ToDouble());
    }
    std::printf("\n");
  } else {
    std::printf("\npar-time query: %s\n",
                par_times.status().ToString().c_str());
  }

  // Average value via the two exact aggregates above: AVG = area / length.
  auto area = db.Query(
      "SURFACE[t, u](exists v (Bond(t, v) and 0 <= u and u <= v))(a)");
  auto len = db.Query("LENGTH[t](exists v (Bond(t, v)))(len)");
  if (area.ok() && len.ok() && area->scalar.exact && len->scalar.exact) {
    ccdb::Rational avg =
        area->scalar.exact_value / len->scalar.exact_value;
    std::printf("\nTime-averaged bond value = %s (= %.6f)\n",
                avg.ToString().c_str(), avg.ToDouble());
  }
  return 0;
}
