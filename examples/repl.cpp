// Interactive constraint-database shell.
//
//   $ ./example_repl
//   ccdb> S(x, y) := 4*x^2 - y - 20*x + 25 <= 0
//   ok: stored S/2
//   ccdb> exists y (S(x, y) and y <= 0)
//   x: (2*x - 5 = 0)
//   ccdb> SURFACE[x, y](S(x, y) and y <= 9)(z)
//   z = 18 (exact)
//   ccdb> .solve exists y (S(x, y) and y <= 0)
//   (5/2)
//
// Commands:
//   Name(cols) := formula     define a relation
//   <CALC_F formula>          evaluate a query (closed-form output)
//   .solve <formula>          numerical evaluation (finite answer sets)
//   .fp <k> <formula>         finite-precision evaluation under Z_k
//   .explain <formula>        per-stage profile of the Figure-1 pipeline
//   .profile [formula]        EXPLAIN ANALYZE: execute with the profiler
//                             armed (defaults to the last query text)
//   .plan <formula>           print the query plan without executing
//   .log [on [path]|off]      structured JSONL query log
//   .config                   resolved EngineConfig (every CCDB_* knob)
//   .stats                    process-wide metrics snapshot (JSON)
//   .trace <on|off|path>      span tracing / Chrome trace export
//   .checkpoint               fold the WAL into a checkpoint (durable mode)
//   .insert Name(cols) := formula   append tuples to an existing relation
//   .deps <formula>           relations the query reads, with versions
//   .list | .show <name> | .drop <name>
//   .save <path> | .load <path>
//   .help | .quit
//
// Started as `example_repl <dir>`, the shell opens a crash-safe durable
// database rooted at <dir> (ConstraintDatabase::OpenDurable): definitions
// and drops are write-ahead logged and survive a crash; recovery happens
// at startup and is summarized before the first prompt. The WAL fsync
// policy comes from CCDB_WAL_FSYNC (always|batch|off).

#include <atomic>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "base/config.h"
#include "base/metrics.h"
#include "base/query_log.h"
#include "base/trace.h"
#include "constraint/formula.h"
#include "engine/database.h"
#include "poly/polynomial.h"
#include "qe/qe_cache.h"

namespace {

// Set by the SIGINT handler; each governed query charges against it, so
// Ctrl-C cancels the running evaluation instead of killing the shell.
std::atomic<bool> g_interrupted{false};

extern "C" void HandleSigint(int) { g_interrupted.store(true); }

// Per-attempt deadline applied to every query; 0 = unlimited (.deadline).
double g_deadline_seconds = 0.0;

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  Name(cols) := formula   define a relation\n"
      "  <formula>               evaluate a CALC_F query\n"
      "  .solve <formula>        epsilon-approximate a finite answer set\n"
      "  .fp <k> <formula>       finite-precision query under Z_k\n"
      "  .explain <formula>      per-stage profile (Figure-1 pipeline)\n"
      "  .profile [formula]      EXPLAIN ANALYZE with per-plan-node times\n"
      "                          (no formula = profile the last query)\n"
      "  .plan <formula>         print the query plan without executing\n"
      "  .log on [path]          start the JSONL query log (default\n"
      "                          ccdb_query_log.jsonl; or CCDB_QUERY_LOG)\n"
      "  .log off | .log         stop logging / show the log status\n"
      "  .deadline <ms>          per-query deadline (0 = off); exhausted\n"
      "                          queries degrade down the policy ladder\n"
      "  .config                 the resolved engine configuration (every\n"
      "                          CCDB_* knob) and its fingerprint\n"
      "  .stats                  metrics snapshot as JSON\n"
      "  .trace on|off           toggle span tracing\n"
      "  .trace <path>           write collected spans as Chrome trace JSON\n"
      "  .checkpoint             fold the WAL into an atomic checkpoint\n"
      "                          (durable mode: start as example_repl <dir>)\n"
      "  .list                   list relations\n"
      "  .show <name>            print a relation's constraints\n"
      "  .drop <name>            remove a relation\n"
      "  .insert Name(cols) := formula\n"
      "                          append tuples to an existing relation\n"
      "                          (only queries reading Name are invalidated)\n"
      "  .deps <formula>         the query's read-set: each relation it\n"
      "                          reads, with its current version stamp\n"
      "  .save <path> / .load <path>\n"
      "  .help / .quit\n");
}

void RunQuery(const ccdb::ConstraintDatabase& db, const std::string& text) {
  ccdb::QueryPolicy policy;
  policy.limits = ccdb::ResourceLimits::Deadline(g_deadline_seconds);
  policy.cancel = &g_interrupted;
  ccdb::QueryVerdict verdict;
  auto result = db.QueryWithPolicy(text, policy, &verdict);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    if (!verdict.exhausted_rungs.empty()) {
      std::printf("governor: %s\n", verdict.ToString().c_str());
    }
    return;
  }
  if (verdict.attempts > 1) {
    std::printf("governor: %s\n", verdict.ToString().c_str());
  }
  if (result->has_scalar) {
    if (result->scalar.exact) {
      std::printf("%s = %s (exact)\n", result->column_names[0].c_str(),
                  result->scalar.exact_value.ToString().c_str());
    } else {
      std::printf("%s ~= %.9f (+-%.1e)\n", result->column_names[0].c_str(),
                  result->scalar.Value(), result->scalar.error_estimate);
    }
    return;
  }
  if (result->column_names.empty()) {
    std::printf("%s\n", result->relation.is_empty_syntactically() ? "false"
                                                                  : "true");
    return;
  }
  std::string header;
  for (std::size_t i = 0; i < result->column_names.size(); ++i) {
    if (i > 0) header += ", ";
    header += result->column_names[i];
  }
  std::printf("%s: %s\n", header.c_str(),
              result->relation.ToString(result->column_names).c_str());
}

void RunSolve(const ccdb::ConstraintDatabase& db, const std::string& text) {
  ccdb::Rational epsilon(ccdb::BigInt(1), ccdb::BigInt(1000000));
  auto solutions = db.Solve(text, epsilon);
  if (!solutions.ok()) {
    std::printf("error: %s\n", solutions.status().ToString().c_str());
    return;
  }
  if (solutions->empty()) {
    std::printf("no solutions\n");
    return;
  }
  for (const auto& point : *solutions) {
    std::string rendered = "(";
    for (std::size_t i = 0; i < point.size(); ++i) {
      if (i > 0) rendered += ", ";
      rendered += point[i].ToString();
    }
    std::printf("%s)\n", rendered.c_str());
  }
}

void RunExplain(const ccdb::ConstraintDatabase& db, const std::string& text) {
  auto explained = db.Explain(text);
  if (!explained.ok()) {
    std::printf("error: %s\n", explained.status().ToString().c_str());
    return;
  }
  std::printf("%s", explained->ToString().c_str());
}

// Last evaluated query text — `.profile` with no argument re-runs it under
// the profiler.
std::string g_last_query;

void RunProfile(const ccdb::ConstraintDatabase& db, const std::string& text) {
  if (text.empty()) {
    std::printf("no query to profile yet (run one, or .profile <formula>)\n");
    return;
  }
  auto analyzed = db.ExplainAnalyze(text);
  if (!analyzed.ok()) {
    std::printf("error: %s\n", analyzed.status().ToString().c_str());
    return;
  }
  std::printf("%s", analyzed->ToString().c_str());
}

void RunLog(const std::string& rest) {
  ccdb::QueryLog& log = ccdb::QueryLog::Global();
  if (rest.empty()) {
    if (log.enabled()) {
      std::printf("query log: on (%s, %llu record(s) written)\n",
                  log.path().c_str(),
                  static_cast<unsigned long long>(log.records_written()));
    } else {
      std::printf("query log: off\n");
    }
    return;
  }
  if (rest == "off") {
    log.Disable();
    std::printf("query log off\n");
    return;
  }
  std::string path = "ccdb_query_log.jsonl";
  if (rest.rfind("on", 0) == 0) {
    std::string arg = rest.substr(2);
    std::size_t begin = arg.find_first_not_of(" \t");
    if (begin != std::string::npos) path = arg.substr(begin);
  } else {
    std::printf("usage: .log [on [path] | off]\n");
    return;
  }
  ccdb::Status status = log.Enable(path);
  if (status.ok()) {
    std::printf("query log on: %s\n", path.c_str());
  } else {
    std::printf("error: %s\n", status.ToString().c_str());
  }
}

void RunPlan(const ccdb::ConstraintDatabase& db, const std::string& text) {
  auto plan = db.Plan(text);
  if (!plan.ok()) {
    std::printf("error: %s\n", plan.status().ToString().c_str());
    return;
  }
  std::printf("%s", plan->c_str());
}

void RunTrace(const std::string& rest) {
  ccdb::Tracer& tracer = ccdb::Tracer::Global();
  if (rest == "on") {
    tracer.SetEnabled(true);
    std::printf("tracing on\n");
  } else if (rest == "off") {
    tracer.SetEnabled(false);
    std::printf("tracing off\n");
  } else {
    ccdb::Status status = tracer.WriteChromeTrace(rest);
    if (status.ok()) {
      std::printf("wrote %zu span(s) to %s\n", tracer.size(), rest.c_str());
    } else {
      std::printf("error: %s\n", status.ToString().c_str());
    }
  }
}

void RunFp(const ccdb::ConstraintDatabase& db, const std::string& rest) {
  std::istringstream in(rest);
  unsigned k = 0;
  in >> k;
  std::string formula;
  std::getline(in, formula);
  if (k == 0 || formula.empty()) {
    std::printf("usage: .fp <k> <formula>\n");
    return;
  }
  ccdb::FpQeStats stats;
  auto result = db.QueryFp(formula, k, &stats);
  if (!result.ok()) {
    std::printf("%s (pipeline needed %llu bits)\n",
                result.status().ToString().c_str(),
                static_cast<unsigned long long>(stats.max_bits));
    return;
  }
  std::printf("defined under Z_%u (pipeline bits: %llu)\n", k,
              static_cast<unsigned long long>(stats.max_bits));
  std::printf("%s\n", result->relation.ToString(result->column_names).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  // Ctrl-C cancels the running query (cooperatively, via the governor)
  // rather than terminating the shell. SA_RESTART keeps the blocking
  // getline at the prompt from failing with EINTR.
  struct sigaction action = {};
  action.sa_handler = HandleSigint;
  action.sa_flags = SA_RESTART;
  sigaction(SIGINT, &action, nullptr);

  ccdb::ConstraintDatabase db;
  if (argc > 1) {
    auto opened = ccdb::ConstraintDatabase::OpenDurable(argv[1]);
    if (!opened.ok()) {
      std::fprintf(stderr, "cannot open durable database %s: %s\n", argv[1],
                   opened.status().ToString().c_str());
      return 1;
    }
    db = std::move(opened).value();
    const ccdb::RecoveryInfo* recovery = db.recovery_info();
    std::printf("durable database: %s\n", argv[1]);
    if (!recovery->checkpoint_file.empty() || recovery->replayed_records > 0 ||
        recovery->torn_tail) {
      std::printf("recovered: checkpoint %s, %zu WAL record(s) replayed",
                  recovery->checkpoint_file.empty()
                      ? "(none)"
                      : recovery->checkpoint_file.c_str(),
                  recovery->replayed_records);
      if (recovery->torn_tail) {
        std::printf(", torn tail dropped (%llu byte(s))",
                    static_cast<unsigned long long>(recovery->torn_bytes));
      }
      std::printf("\n");
    }
  }
  std::printf("ccdb — constraint database shell (.help for commands)\n");
  std::string line;
  while (true) {
    std::printf("ccdb> ");
    std::fflush(stdout);
    g_interrupted.store(false);
    if (!std::getline(std::cin, line)) {
      std::printf("\n");  // clean EOF (Ctrl-D): end the line, exit 0
      break;
    }
    // Trim.
    std::size_t begin = line.find_first_not_of(" \t");
    if (begin == std::string::npos) continue;
    std::size_t end = line.find_last_not_of(" \t");
    line = line.substr(begin, end - begin + 1);
    if (line == ".quit" || line == ".exit") break;
    if (line == ".help") {
      PrintHelp();
      continue;
    }
    if (line == ".list") {
      for (const std::string& name : db.RelationNames()) {
        auto rel = db.Relation(name);
        std::printf("  %s/%d\n", name.c_str(),
                    rel.ok() ? rel->arity() : -1);
      }
      continue;
    }
    if (line.rfind(".show ", 0) == 0) {
      std::string name = line.substr(6);
      auto rel = db.Relation(name);
      if (!rel.ok()) {
        std::printf("error: %s\n", rel.status().ToString().c_str());
      } else {
        std::printf("%s\n", rel->ToString().c_str());
      }
      continue;
    }
    if (line.rfind(".drop ", 0) == 0) {
      ccdb::Status status = db.Drop(line.substr(6));
      std::printf("%s\n", status.ok() ? "ok" : status.ToString().c_str());
      continue;
    }
    if (line.rfind(".insert ", 0) == 0) {
      ccdb::Status status = db.Insert(line.substr(8));
      std::printf("%s\n", status.ok() ? "ok" : status.ToString().c_str());
      continue;
    }
    if (line.rfind(".deps ", 0) == 0) {
      auto read_set = db.ReadSet(line.substr(6));
      if (!read_set.ok()) {
        std::printf("error: %s\n", read_set.status().ToString().c_str());
      } else if (read_set->empty()) {
        std::printf("reads no relations\n");
      } else {
        for (const auto& [name, version] : *read_set) {
          std::printf("  %s  v%llu%s\n", name.c_str(),
                      static_cast<unsigned long long>(version),
                      version == 0 ? "  (not defined)" : "");
        }
      }
      continue;
    }
    if (line.rfind(".save ", 0) == 0) {
      ccdb::Status status = db.Save(line.substr(6));
      std::printf("%s\n", status.ok() ? "ok" : status.ToString().c_str());
      continue;
    }
    if (line.rfind(".load ", 0) == 0) {
      ccdb::Status status = db.Load(line.substr(6));
      std::printf("%s\n", status.ok() ? "ok" : status.ToString().c_str());
      continue;
    }
    if (line.rfind(".deadline", 0) == 0) {
      std::istringstream in(line.substr(9));
      double ms = -1.0;
      in >> ms;
      if (ms < 0.0) {
        if (g_deadline_seconds > 0.0) {
          std::printf("deadline: %.0f ms\n", g_deadline_seconds * 1e3);
        } else {
          std::printf("deadline: off\n");
        }
      } else {
        g_deadline_seconds = ms / 1e3;
        if (ms > 0.0) {
          std::printf("deadline set to %.0f ms\n", ms);
        } else {
          std::printf("deadline off\n");
        }
      }
      continue;
    }
    if (line.rfind(".solve ", 0) == 0) {
      RunSolve(db, line.substr(7));
      continue;
    }
    if (line.rfind(".fp ", 0) == 0) {
      RunFp(db, line.substr(4));
      continue;
    }
    if (line.rfind(".explain ", 0) == 0) {
      RunExplain(db, line.substr(9));
      continue;
    }
    if (line.rfind(".plan ", 0) == 0) {
      RunPlan(db, line.substr(6));
      continue;
    }
    if (line == ".profile" || line.rfind(".profile ", 0) == 0) {
      std::string text =
          line.size() > 8 ? line.substr(9) : g_last_query;
      RunProfile(db, text);
      if (!text.empty()) g_last_query = text;
      continue;
    }
    if (line == ".log" || line.rfind(".log ", 0) == 0) {
      RunLog(line.size() > 4 ? line.substr(5) : "");
      continue;
    }
    if (line == ".config") {
      std::printf("%s", ccdb::EngineConfig::Process().ToString().c_str());
      continue;
    }
    if (line == ".stats") {
      std::printf("%s\n",
                  ccdb::MetricsRegistry::Global().SnapshotJson().c_str());
      ccdb::FormulaArenaStats arena = ccdb::GetFormulaArenaStats();
      ccdb::PolyInternStats poly = ccdb::GetPolyInternStats();
      std::printf(
          "interned IR: formula arena %zu live / %zu ever interned, "
          "%zu interned polynomials, qe cache %zu entries\n",
          arena.live_nodes, arena.total_interned, poly.entries,
          ccdb::QeResultCache().size());
      continue;
    }
    if (line.rfind(".trace ", 0) == 0) {
      RunTrace(line.substr(7));
      continue;
    }
    if (line == ".checkpoint") {
      ccdb::Status status = db.Checkpoint();
      std::printf("%s\n", status.ok() ? "ok" : status.ToString().c_str());
      continue;
    }
    if (line[0] == '.') {
      std::printf("unknown command (try .help)\n");
      continue;
    }
    // Relation definition or query?
    if (line.find(":=") != std::string::npos) {
      ccdb::Status status = db.Define(line);
      if (status.ok()) {
        std::printf("ok\n");
      } else {
        std::printf("error: %s\n", status.ToString().c_str());
      }
      continue;
    }
    g_last_query = line;
    RunQuery(db, line);
  }
  return 0;
}
