// Recursion example: Datalog¬ with inflationary semantics over constraint
// relations (paper, Section 4: "the finite precision semantics allows a
// natural tractable extension of first-order with recursion").
//
// A robot moves on the real line; one step takes it from position x to any
// position in [x + 1/2, x + 1] while staying inside the corridor [0, 10].
// Reach(x, y) — "y is reachable from x" — is the transitive closure of the
// step relation, computed by the inflationary fixpoint with a QE call per
// iteration, and bounded-precision evaluation (Theorem 4.7) is
// demonstrated on a doubling rule.

#include <cstdio>

#include "arith/floatk.h"
#include "datalog/datalog.h"

namespace {

ccdb::Polynomial V(int i) { return ccdb::Polynomial::Var(i); }

}  // namespace

int main() {
  using ccdb::Atom;
  using ccdb::DatalogLiteral;
  using ccdb::DatalogProgram;
  using ccdb::DatalogRule;
  using ccdb::Polynomial;
  using ccdb::RelOp;

  // EDB: Step(x, y) := x + 1/2 <= y <= x + 1 and 0 <= x and y <= 10.
  ccdb::ConstraintRelation step(2);
  {
    ccdb::GeneralizedTuple t;
    t.atoms.emplace_back(V(0) + Polynomial(ccdb::Rational(
                                    ccdb::BigInt(1), ccdb::BigInt(2))) -
                             V(1),
                         RelOp::kLe);
    t.atoms.emplace_back(V(1) - V(0) - Polynomial(1), RelOp::kLe);
    t.atoms.emplace_back(-V(0), RelOp::kLe);
    t.atoms.emplace_back(V(1) - Polynomial(10), RelOp::kLe);
    step.AddTuple(std::move(t));
  }

  DatalogProgram program;
  program.idb_arities["Reach"] = 2;
  {
    DatalogRule base;
    base.head = "Reach";
    base.head_vars = {0, 1};
    base.body.push_back(DatalogLiteral::Rel("Step", {0, 1}));
    program.rules.push_back(base);
  }
  {
    DatalogRule inductive;
    inductive.head = "Reach";
    inductive.head_vars = {0, 1};
    inductive.body.push_back(DatalogLiteral::Rel("Reach", {0, 2}));
    inductive.body.push_back(DatalogLiteral::Rel("Step", {2, 1}));
    program.rules.push_back(inductive);
  }

  std::map<std::string, ccdb::ConstraintRelation> edb;
  edb.emplace("Step", step);

  ccdb::DatalogOptions options;
  options.max_iterations = 64;
  ccdb::DatalogStats stats;
  auto result = ccdb::EvaluateDatalog(program, edb, options, &stats);
  if (!result.ok()) {
    std::fprintf(stderr, "datalog failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("Inflationary fixpoint reached after %d iterations "
              "(%llu QE calls)\n\n",
              stats.iterations,
              static_cast<unsigned long long>(stats.qe_calls));

  const ccdb::ConstraintRelation& reach = result->at("Reach");
  struct Probe {
    double from, to;
  };
  const Probe probes[] = {{0, 0.75}, {0, 5}, {0, 10}, {0, 0.25},
                          {3, 2},    {9.5, 10}};
  for (const Probe& probe : probes) {
    auto from = ccdb::FloatK::FromDouble(probe.from).ToRational();
    auto to = ccdb::FloatK::FromDouble(probe.to).ToRational();
    std::printf("Reach(%.2f, %.2f)?  %s\n", probe.from, probe.to,
                reach.Contains({from, to}) ? "yes" : "no");
  }

  // Bounded precision (Theorem 4.7): the doubling program overflows Z_k
  // and the answer becomes undefined instead of diverging.
  DatalogProgram doubling;
  doubling.idb_arities["D"] = 1;
  {
    DatalogRule seed;
    seed.head = "D";
    seed.head_vars = {0};
    seed.body.push_back(
        DatalogLiteral::Constraint(Atom(V(0) - Polynomial(1), RelOp::kEq)));
    doubling.rules.push_back(seed);
  }
  {
    DatalogRule twice;
    twice.head = "D";
    twice.head_vars = {0};
    twice.body.push_back(DatalogLiteral::Rel("D", {1}));
    twice.body.push_back(DatalogLiteral::Constraint(
        Atom(V(0) - Polynomial(2) * V(1), RelOp::kEq)));
    doubling.rules.push_back(twice);
  }
  ccdb::DatalogOptions fp_options;
  fp_options.precision_k = 8;
  fp_options.max_iterations = 100;
  ccdb::DatalogStats fp_stats;
  auto fp_result = ccdb::EvaluateDatalog(doubling, {}, fp_options, &fp_stats);
  std::printf("\nDoubling program under Z_%u: %s (stopped at iteration %d)\n",
              fp_options.precision_k,
              fp_result.ok() ? "fixpoint" :
                               fp_result.status().ToString().c_str(),
              fp_stats.iterations);
  return 0;
}
